"""FSM → gate-level synthesis flow.

This is the reproduction's stand-in for the paper's "after performing state
assignment, the circuits are synthesized and mapped onto a standard-cell
library using SIS":

1. encode states (:mod:`repro.fsm.encoding`);
2. extract per-output-bit on/dc truth tables over the ``r + s`` input and
   present-state variables (unused state codes and unspecified input
   combinations are don't-cares; the specification's output ``-`` entries
   are explicit don't-cares);
3. minimize each output with the espresso-style heuristic;
4. build a structurally-hashed netlist (identical product terms are shared
   across outputs) and map it onto the cell library.

Variable order (and hence minterm bit order) everywhere downstream:
variables ``0 .. r-1`` are the primary inputs, ``r .. r+s-1`` are the
present-state bits.  Netlist outputs are the ``s`` next-state bits followed
by the ``o`` primary outputs — exactly the paper's observable bit vector
``b_1 .. b_n`` with ``n = s + o``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fsm.encoding import Encoding, encode_states
from repro.fsm.machine import FSM
from repro.logic.cover import Cover
from repro.logic.cube import Cube
from repro.logic.espresso import espresso
from repro.logic.netlist import GateKind, Netlist
from repro.logic.tech import DEFAULT_LIBRARY, CellLibrary, CircuitStats, circuit_stats
from repro.util.bitops import int_to_bits


@dataclass
class SynthesisResult:
    """A synthesized FSM: netlist plus all the metadata the CED flow needs."""

    fsm: FSM
    encoding: Encoding
    netlist: Netlist
    covers: list[Cover]
    on_sets: np.ndarray  # (num_bits, 2**num_vars) bool
    dc_sets: np.ndarray  # (num_bits, 2**num_vars) bool
    stats: CircuitStats
    library: CellLibrary

    # ------------------------------------------------------------------
    # Dimensions
    # ------------------------------------------------------------------
    @property
    def num_inputs(self) -> int:
        """Primary inputs r."""
        return self.fsm.num_inputs

    @property
    def num_state_bits(self) -> int:
        """State bits s."""
        return self.encoding.num_bits

    @property
    def num_fsm_outputs(self) -> int:
        """Primary outputs o."""
        return self.fsm.num_outputs

    @property
    def num_vars(self) -> int:
        """Combinational input variables: r + s."""
        return self.num_inputs + self.num_state_bits

    @property
    def num_bits(self) -> int:
        """Observable next-state/output bits: n = s + o."""
        return self.num_state_bits + self.num_fsm_outputs

    @property
    def reset_code(self) -> int:
        return self.encoding.code(self.fsm.reset_state)

    def minterm(self, state_code: int, input_value: int) -> int:
        """Pack (input, present state) into a variable-space minterm."""
        return input_value | (state_code << self.num_inputs)

    def pattern(self, state_code: int, input_value: int) -> np.ndarray:
        """The same pair as a 0/1 pattern row for the netlist simulator."""
        bits = int_to_bits(input_value, self.num_inputs) + int_to_bits(
            state_code, self.num_state_bits
        )
        return np.array(bits, dtype=np.uint8)

    def split_response(self, bits: np.ndarray) -> tuple[int, int]:
        """Split an n-bit response row into (next-state code, output word)."""
        s = self.num_state_bits
        next_code = int(np.dot(bits[:s].astype(np.int64), 1 << np.arange(s)))
        o = self.num_fsm_outputs
        output = int(np.dot(bits[s:].astype(np.int64), 1 << np.arange(o)))
        return next_code, output


def synthesize_fsm(
    fsm: FSM,
    encoding: Encoding | str = "binary",
    minimize: bool = True,
    library: CellLibrary = DEFAULT_LIBRARY,
    multilevel: bool = False,
) -> SynthesisResult:
    """Run the full synthesis flow on a symbolic FSM.

    ``multilevel=True`` applies the algebraic divisor-extraction pass of
    :mod:`repro.logic.multilevel` after two-level minimization, sharing
    sub-expressions across outputs (closer to the SIS flow the paper
    used, at some runtime cost).
    """
    if isinstance(encoding, str):
        encoding = encode_states(fsm, encoding)
    r = fsm.num_inputs
    s = encoding.num_bits
    num_vars = r + s
    num_bits = s + fsm.num_outputs
    space = 1 << num_vars

    # value[bit, minterm]: -1 don't-care / unspecified, else 0 or 1.
    values = np.full((num_bits, space), -1, dtype=np.int8)
    initial_cubes: list[list[Cube]] = [[] for _ in range(num_bits)]

    for transition in fsm.transitions:
        cube = _transition_cube(transition.input_cube, encoding.code(transition.src), r, s)
        minterms = cube.minterm_array()
        dst_code = encoding.code(transition.dst)
        for bit in range(s):
            target = (dst_code >> bit) & 1
            _assign(values, bit, minterms, target, fsm, transition)
            if target:
                initial_cubes[bit].append(cube)
        for bit, char in enumerate(transition.output):
            if char == "-":
                continue
            target = int(char)
            _assign(values, s + bit, minterms, target, fsm, transition)
            if target:
                initial_cubes[s + bit].append(cube)

    on_sets = values == 1
    dc_sets = values == -1

    covers: list[Cover] = []
    for bit in range(num_bits):
        if minimize:
            initial = Cover(num_vars, initial_cubes[bit]).deduplicated()
            covers.append(
                espresso(num_vars, on_sets[bit], dc_sets[bit], initial=initial)
            )
        else:
            covers.append(Cover(num_vars, initial_cubes[bit]).deduplicated())

    input_names = [f"in{j}" for j in range(r)] + [f"ps{j}" for j in range(s)]
    output_names = [f"ns{j}" for j in range(s)] + [
        f"out{j}" for j in range(fsm.num_outputs)
    ]
    if multilevel:
        from repro.logic.multilevel import multilevel_netlist

        netlist = multilevel_netlist(covers, input_names, output_names)
    else:
        netlist = covers_to_netlist(covers, input_names, output_names)
    stats = circuit_stats(netlist, library, num_flipflops=s)
    return SynthesisResult(
        fsm=fsm,
        encoding=encoding,
        netlist=netlist,
        covers=covers,
        on_sets=on_sets,
        dc_sets=dc_sets,
        stats=stats,
        library=library,
    )


def covers_to_netlist(
    covers: list[Cover],
    input_names: list[str],
    output_names: list[str],
) -> Netlist:
    """Multi-output SOP → netlist with shared literals and product terms."""
    if len(covers) != len(output_names):
        raise ValueError("one cover per output required")
    if not covers:
        raise ValueError("at least one output required")
    num_vars = covers[0].num_vars
    if num_vars != len(input_names):
        raise ValueError("input name count must match cover arity")

    netlist = Netlist()
    literal_nodes: list[int] = [netlist.add_input(name) for name in input_names]
    for cover, name in zip(covers, output_names):
        if cover.num_vars != num_vars:
            raise ValueError("mixed cover arities")
        netlist.add_output(name, emit_cover(netlist, literal_nodes, cover))
    return netlist


def emit_cover(netlist: Netlist, literal_nodes: list[int], cover: Cover) -> int:
    """Emit a cover as AND/OR logic over existing variable nodes.

    Structural hashing in the netlist shares identical literals and
    product terms with everything emitted before.
    """

    def literal(var: int, polarity: int) -> int:
        node = literal_nodes[var]
        return node if polarity else netlist.add_not(node)

    products = []
    for cube in cover.cubes:
        literals = [literal(var, pol) for var, pol in cube.literals()]
        if not literals:
            return netlist.add_const(1)
        products.append(
            literals[0]
            if len(literals) == 1
            else netlist.add_gate(GateKind.AND, literals)
        )
    if not products:
        return netlist.add_const(0)
    if len(products) == 1:
        return products[0]
    return netlist.add_gate(GateKind.OR, products)


def _transition_cube(input_cube: str, src_code: int, r: int, s: int) -> Cube:
    """A transition's (input cube, source state) as a cube over r+s vars."""
    care = 0
    value = 0
    for position, char in enumerate(input_cube):
        if char == "-":
            continue
        care |= 1 << position
        if char == "1":
            value |= 1 << position
    state_mask = ((1 << s) - 1) << r
    care |= state_mask
    value |= (src_code << r) & state_mask
    return Cube(r + s, care, value)


def _assign(
    values: np.ndarray,
    bit: int,
    minterms: np.ndarray,
    target: int,
    fsm: FSM,
    transition,
) -> None:
    current = values[bit, minterms]
    conflict = (current >= 0) & (current != target)
    if conflict.any():
        raise ValueError(
            f"{fsm.name}: conflicting specification for bit {bit} at "
            f"transition {transition}"
        )
    values[bit, minterms] = target
