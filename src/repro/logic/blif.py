"""BLIF (Berkeley Logic Interchange Format) export/import for netlists.

SIS — the tool behind the paper's synthesis numbers — speaks BLIF, so this
module makes the reproduction's netlists interchangeable with the classic
toolchain: ``write_blif`` dumps any :class:`~repro.logic.netlist.Netlist`
as ``.names`` logic nodes (one cover row per product term), and
``parse_blif`` reads the combinational subset back (``.model``,
``.inputs``, ``.outputs``, ``.names``).

Latches are out of scope on purpose: the repository keeps the flip-flop
boundary in :class:`~repro.logic.synthesis.SynthesisResult` rather than in
the netlist (see that module's docstring), and exported models are the
combinational next-state/output blocks.
"""

from __future__ import annotations

from pathlib import Path

from repro.logic.netlist import Gate, GateKind, Netlist


def write_blif(netlist: Netlist, model_name: str = "repro") -> str:
    """Serialise a netlist to BLIF text."""
    names = _node_names(netlist)
    lines = [f".model {model_name}"]
    lines.append(
        ".inputs " + " ".join(names[node] for node in netlist.input_ids)
    )
    lines.append(".outputs " + " ".join(netlist.output_names))

    for node, gate in enumerate(netlist.gates):
        if gate.kind in (GateKind.INPUT,):
            continue
        lines.extend(_names_block(gate, node, names))

    # Output aliases: each named output is a buffer of its driver node.
    for name, node in zip(netlist.output_names, netlist.output_ids):
        if names[node] != name:
            lines.append(f".names {names[node]} {name}")
            lines.append("1 1")
    lines.append(".end")
    return "\n".join(lines) + "\n"


def write_blif_file(netlist: Netlist, path: str | Path,
                    model_name: str = "repro") -> None:
    Path(path).write_text(write_blif(netlist, model_name))


def _node_names(netlist: Netlist) -> dict[int, str]:
    names: dict[int, str] = {}
    for node in netlist.input_ids:
        names[node] = netlist.gates[node].name
    for node, gate in enumerate(netlist.gates):
        if node not in names:
            names[node] = f"n{node}"
    return names


def _names_block(gate: Gate, node: int, names: dict[int, str]) -> list[str]:
    inputs = [names[src] for src in gate.fanin]
    header = ".names " + " ".join(inputs + [names[node]])
    kind = gate.kind
    k = len(inputs)
    if kind is GateKind.CONST0:
        return [f".names {names[node]}"]
    if kind is GateKind.CONST1:
        return [f".names {names[node]}", "1"]
    if kind is GateKind.NOT:
        return [header, "0 1"]
    if kind is GateKind.BUF:
        return [header, "1 1"]
    if kind is GateKind.AND:
        return [header, "1" * k + " 1"]
    if kind is GateKind.NAND:
        return [header] + [
            "-" * i + "0" + "-" * (k - i - 1) + " 1" for i in range(k)
        ]
    if kind is GateKind.OR:
        return [header] + [
            "-" * i + "1" + "-" * (k - i - 1) + " 1" for i in range(k)
        ]
    if kind is GateKind.NOR:
        return [header, "0" * k + " 1"]
    if kind in (GateKind.XOR, GateKind.XNOR):
        rows = []
        want = 1 if kind is GateKind.XOR else 0
        for assignment in range(1 << k):
            ones = bin(assignment).count("1")
            if ones % 2 == want:
                pattern = "".join(
                    "1" if (assignment >> i) & 1 else "0" for i in range(k)
                )
                rows.append(pattern + " 1")
        return [header] + rows
    raise ValueError(f"cannot export gate kind {kind}")  # pragma: no cover


# ----------------------------------------------------------------------
# Parsing (combinational subset)
# ----------------------------------------------------------------------
def parse_blif(text: str) -> Netlist:
    """Parse the combinational BLIF subset back into a netlist.

    Each ``.names`` block becomes OR-of-AND logic.  Only ``1`` output
    polarity is supported (the polarity our writer emits).
    """
    inputs: list[str] = []
    outputs: list[str] = []
    blocks: list[tuple[list[str], str, list[str]]] = []

    current: tuple[list[str], str, list[str]] | None = None
    for raw_line in _joined_lines(text):
        line = raw_line.strip()
        if not line or line.startswith("#"):
            continue
        if line.startswith("."):
            fields = line.split()
            directive = fields[0]
            if directive == ".model":
                continue
            if directive == ".inputs":
                inputs.extend(fields[1:])
            elif directive == ".outputs":
                outputs.extend(fields[1:])
            elif directive == ".names":
                signals = fields[1:]
                if not signals:
                    raise BlifFormatError("empty .names header")
                current = (signals[:-1], signals[-1], [])
                blocks.append(current)
            elif directive == ".end":
                break
            else:
                raise BlifFormatError(f"unsupported directive {directive}")
            if directive != ".names":
                current = None
            continue
        if current is None:
            raise BlifFormatError(f"cover row outside .names: {line!r}")
        current[2].append(line)

    netlist = Netlist()
    nodes: dict[str, int] = {}
    for name in inputs:
        nodes[name] = netlist.add_input(name)

    by_target = {target: (srcs, rows) for srcs, target, rows in blocks}

    def build(name: str) -> int:
        if name in nodes:
            return nodes[name]
        if name not in by_target:
            raise BlifFormatError(f"undriven signal {name!r}")
        sources, rows = by_target[name]
        source_nodes = [build(src) for src in sources]
        node = _cover_logic(netlist, source_nodes, rows, name)
        nodes[name] = node
        return node

    for name in outputs:
        netlist.add_output(name, build(name))
    return netlist


def _cover_logic(
    netlist: Netlist, source_nodes: list[int], rows: list[str], name: str
) -> int:
    if not rows:
        return netlist.add_const(0)
    products: list[int] = []
    for row in rows:
        fields = row.split()
        if len(source_nodes) == 0:
            if fields != ["1"]:
                raise BlifFormatError(f"bad constant row {row!r} for {name}")
            return netlist.add_const(1)
        if len(fields) != 2 or fields[1] != "1":
            raise BlifFormatError(
                f"unsupported cover row {row!r} for {name} "
                "(only on-set covers are supported)"
            )
        pattern = fields[0]
        if len(pattern) != len(source_nodes):
            raise BlifFormatError(f"row width mismatch in {name}")
        literals = []
        for char, src in zip(pattern, source_nodes):
            if char == "1":
                literals.append(src)
            elif char == "0":
                literals.append(netlist.add_not(src))
            elif char != "-":
                raise BlifFormatError(f"bad cover character {char!r}")
        if not literals:
            return netlist.add_const(1)
        products.append(
            literals[0]
            if len(literals) == 1
            else netlist.add_gate(GateKind.AND, literals)
        )
    if len(products) == 1:
        return products[0]
    return netlist.add_gate(GateKind.OR, products)


def _joined_lines(text: str) -> list[str]:
    """Resolve BLIF's backslash line continuations."""
    joined: list[str] = []
    pending = ""
    for line in text.splitlines():
        if line.rstrip().endswith("\\"):
            pending += line.rstrip()[:-1] + " "
            continue
        joined.append(pending + line)
        pending = ""
    if pending:
        joined.append(pending)
    return joined


class BlifFormatError(ValueError):
    """Raised for malformed or unsupported BLIF input."""
