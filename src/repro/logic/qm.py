"""Exact two-level minimization: Quine–McCluskey + branch-and-bound cover.

Used as the ground-truth oracle for small functions (tests validate the
heuristic :mod:`repro.logic.espresso` against it) and as the minimizer for
tiny predictor slices where exactness is cheap.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.logic.cover import Cover
from repro.logic.cube import Cube

MAX_QM_VARS = 14


def quine_mccluskey(
    num_vars: int,
    on_set: Iterable[int],
    dc_set: Iterable[int] = (),
    max_nodes: int = 200_000,
) -> Cover:
    """Minimum-cube cover of ``on_set`` allowed to use ``dc_set``.

    Ties in cube count are broken toward fewer literals.  The cover search is
    exact branch-and-bound up to ``max_nodes`` explored nodes, after which it
    completes greedily (only relevant for adversarially large inputs).
    """
    if num_vars > MAX_QM_VARS:
        raise ValueError(f"quine_mccluskey limited to {MAX_QM_VARS} variables")
    on = sorted(set(int(m) for m in on_set))
    dc = set(int(m) for m in dc_set)
    universe = (1 << num_vars) - 1
    for minterm in list(on) + list(dc):
        if minterm < 0 or minterm > universe:
            raise ValueError(f"minterm {minterm} out of range")
    if not on:
        return Cover.empty(num_vars)
    if len(set(on) | dc) == (1 << num_vars):
        return Cover.universal(num_vars)

    primes = _prime_implicants(num_vars, set(on) | dc)
    chosen = _minimum_cover(num_vars, primes, on, max_nodes)
    return Cover(num_vars, chosen)


def _prime_implicants(num_vars: int, minterms: set[int]) -> list[Cube]:
    """All prime implicants of the function ``on ∪ dc`` via iterated merging."""
    universe = (1 << num_vars) - 1
    current: set[tuple[int, int]] = {(universe, m) for m in minterms}
    primes: set[tuple[int, int]] = set()
    while current:
        merged: set[tuple[int, int]] = set()
        used: set[tuple[int, int]] = set()
        by_care: dict[int, list[tuple[int, int]]] = {}
        for care, value in current:
            by_care.setdefault(care, []).append((care, value))
        for care, group in by_care.items():
            values = {value for _, value in group}
            for _, value in group:
                for var in range(num_vars):
                    bit = 1 << var
                    if not care & bit:
                        continue
                    partner = value ^ bit
                    if partner in values and value < partner:
                        merged.add((care & ~bit, value & ~bit))
                        used.add((care, value))
                        used.add((care, partner))
        primes.update(current - used)
        current = merged
    return [Cube(num_vars, care, value) for care, value in sorted(primes)]


def _minimum_cover(
    num_vars: int,
    primes: Sequence[Cube],
    on: Sequence[int],
    max_nodes: int,
) -> list[Cube]:
    """Minimum subset of ``primes`` covering all ``on`` minterms."""
    minterm_index = {m: i for i, m in enumerate(on)}
    full_mask = (1 << len(on)) - 1
    coverage: list[int] = []
    for prime in primes:
        mask = 0
        for minterm in prime.minterms():
            idx = minterm_index.get(minterm)
            if idx is not None:
                mask |= 1 << idx
        coverage.append(mask)

    # Drop primes that cover no on-minterm, then dominated primes.
    candidates = [
        (primes[i], coverage[i]) for i in range(len(primes)) if coverage[i]
    ]
    candidates = _remove_dominated(candidates)

    # Essential primes: sole coverers of some minterm.
    chosen: list[Cube] = []
    covered = 0
    changed = True
    while changed:
        changed = False
        for bit_idx in range(len(on)):
            bit = 1 << bit_idx
            if covered & bit:
                continue
            holders = [entry for entry in candidates if entry[1] & bit]
            if len(holders) == 1:
                cube, mask = holders[0]
                chosen.append(cube)
                covered |= mask
                candidates = [
                    entry for entry in candidates if entry[0] != cube
                ]
                changed = True
        if covered == full_mask:
            return _tidy(chosen)

    remaining = [(cube, mask & ~covered) for cube, mask in candidates]
    remaining = [entry for entry in remaining if entry[1]]
    remaining = _remove_dominated(remaining)
    best = _branch_and_bound(remaining, covered, full_mask, max_nodes)
    return _tidy(chosen + best)


def _remove_dominated(
    entries: list[tuple[Cube, int]],
) -> list[tuple[Cube, int]]:
    """Remove entries whose coverage is a subset of a not-worse entry."""
    kept: list[tuple[Cube, int]] = []
    ordered = sorted(
        entries, key=lambda e: (-bin(e[1]).count("1"), e[0].num_literals)
    )
    for cube, mask in ordered:
        dominated = any(
            mask & ~other_mask == 0
            and other.num_literals <= cube.num_literals
            for other, other_mask in kept
        )
        if not dominated:
            kept.append((cube, mask))
    return kept


def _branch_and_bound(
    entries: list[tuple[Cube, int]],
    covered: int,
    full_mask: int,
    max_nodes: int,
) -> list[Cube]:
    """Exact minimum cover with a node budget; greedy completion past it."""
    if covered == full_mask:
        return []
    greedy = _greedy_cover(entries, covered, full_mask)
    best: list[tuple[Cube, int]] = greedy
    nodes = 0

    def recurse(
        remaining: list[tuple[Cube, int]],
        current_covered: int,
        picked: list[tuple[Cube, int]],
    ) -> None:
        nonlocal best, nodes
        nodes += 1
        if nodes > max_nodes:
            return
        if current_covered == full_mask:
            if _cost(picked) < _cost(best):
                best = list(picked)
            return
        if len(picked) + 1 > len(best):
            return
        uncovered = full_mask & ~current_covered
        lowest = uncovered & (-uncovered)
        holders = [entry for entry in remaining if entry[1] & lowest]
        holders.sort(key=lambda e: (-bin(e[1]).count("1"), e[0].num_literals))
        for cube, mask in holders:
            rest = [e for e in remaining if e[0] != cube]
            picked.append((cube, mask))
            recurse(rest, current_covered | mask, picked)
            picked.pop()

    recurse(entries, covered, [])
    return [cube for cube, _ in best]


def _greedy_cover(
    entries: list[tuple[Cube, int]],
    covered: int,
    full_mask: int,
) -> list[tuple[Cube, int]]:
    picked: list[tuple[Cube, int]] = []
    pool = list(entries)
    while covered != full_mask:
        best_entry = max(
            pool,
            key=lambda e: (bin(e[1] & ~covered).count("1"), -e[0].num_literals),
        )
        if not best_entry[1] & ~covered:
            raise RuntimeError("greedy cover stuck: primes do not cover on-set")
        picked.append(best_entry)
        covered |= best_entry[1]
        pool.remove(best_entry)
    return picked


def _cost(picked: list[tuple[Cube, int]]) -> tuple[int, int]:
    return (len(picked), sum(cube.num_literals for cube, _ in picked))


def _tidy(cubes: list[Cube]) -> list[Cube]:
    return sorted(set(cubes))
