"""Netlist simulation: single-pattern and bit-parallel batch evaluation.

Because node ids are a topological order (see :mod:`repro.logic.netlist`),
evaluation is a single forward sweep.  The batch evaluator vectorises over
patterns with numpy uint8 lanes, which is what makes whole-fault-universe
detectability extraction tractable in pure Python.

A single stuck-at fault is injected by overriding one node's value with a
constant *after* it is computed — for single faults this is exactly
equivalent to rewiring the net to VDD/GND.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.logic.netlist import GateKind, Netlist

Fault = tuple[int, int]  # (node id, stuck value)


def evaluate(
    netlist: Netlist,
    inputs: Mapping[str, int] | Sequence[int],
    fault: Fault | None = None,
) -> dict[str, int]:
    """Evaluate one pattern; returns output name → value."""
    if isinstance(inputs, Mapping):
        vector = [int(inputs[netlist.input_name(i)]) for i in netlist.input_ids]
    else:
        vector = [int(v) for v in inputs]
    pattern = np.array([vector], dtype=np.uint8)
    result = evaluate_batch(netlist, pattern, fault=fault)[0]
    return dict(zip(netlist.output_names, (int(v) for v in result)))


def evaluate_batch(
    netlist: Netlist,
    patterns: np.ndarray,
    fault: Fault | None = None,
) -> np.ndarray:
    """Evaluate many patterns at once.

    Parameters
    ----------
    patterns:
        ``(P, num_inputs)`` array of 0/1 values, column order matching
        ``netlist.input_ids``.
    fault:
        Optional single stuck-at fault ``(node_id, value)``.

    Returns
    -------
    ``(P, num_outputs)`` uint8 array, column order matching
    ``netlist.output_ids``.
    """
    values = node_values(netlist, patterns, fault=fault)
    return np.stack(
        [values[node] for node in netlist.output_ids], axis=1
    ) if netlist.output_ids else np.zeros((patterns.shape[0], 0), dtype=np.uint8)


def node_values(
    netlist: Netlist,
    patterns: np.ndarray,
    fault: Fault | None = None,
) -> list[np.ndarray]:
    """Per-node value arrays for a pattern batch (used by the fault tools)."""
    patterns = np.asarray(patterns, dtype=np.uint8)
    if patterns.ndim != 2 or patterns.shape[1] != netlist.num_inputs:
        raise ValueError(
            f"patterns must be (P, {netlist.num_inputs}), got {patterns.shape}"
        )
    num_patterns = patterns.shape[0]
    fault_node = fault[0] if fault is not None else -1
    fault_value = None
    if fault is not None:
        fault_value = np.full(num_patterns, fault[1], dtype=np.uint8)

    input_column = {node: idx for idx, node in enumerate(netlist.input_ids)}
    values: list[np.ndarray] = [None] * netlist.num_nodes  # type: ignore[list-item]
    for node, gate in enumerate(netlist.gates):
        kind = gate.kind
        if kind is GateKind.INPUT:
            value = np.ascontiguousarray(patterns[:, input_column[node]])
        elif kind is GateKind.CONST0:
            value = np.zeros(num_patterns, dtype=np.uint8)
        elif kind is GateKind.CONST1:
            value = np.ones(num_patterns, dtype=np.uint8)
        elif kind is GateKind.NOT:
            value = values[gate.fanin[0]] ^ 1
        elif kind is GateKind.BUF:
            value = values[gate.fanin[0]]
        else:
            operands = [values[src] for src in gate.fanin]
            if kind in (GateKind.AND, GateKind.NAND):
                value = _reduce(np.bitwise_and, operands)
                if kind is GateKind.NAND:
                    value = value ^ 1
            elif kind in (GateKind.OR, GateKind.NOR):
                value = _reduce(np.bitwise_or, operands)
                if kind is GateKind.NOR:
                    value = value ^ 1
            elif kind in (GateKind.XOR, GateKind.XNOR):
                value = _reduce(np.bitwise_xor, operands)
                if kind is GateKind.XNOR:
                    value = value ^ 1
            else:  # pragma: no cover - exhaustive above
                raise ValueError(f"unsupported gate kind {kind}")
        if node == fault_node:
            value = fault_value
        values[node] = value
    return values


def _reduce(op, operands: list[np.ndarray]) -> np.ndarray:
    result = operands[0]
    for operand in operands[1:]:
        result = op(result, operand)
    return result
