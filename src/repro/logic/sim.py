"""Netlist simulation: single-pattern and bit-parallel batch evaluation.

Because node ids are a topological order (see :mod:`repro.logic.netlist`),
evaluation is a single forward sweep.  The batch evaluator is a classic
*parallel-pattern* simulator (the PROOFS/PPSFP technique): 64 patterns are
packed into each uint64 lane, so every gate is ``ceil(P/64)`` word-wide
AND/OR/XOR/NOT operations regardless of the pattern count.  The previous
one-uint8-lane-per-pattern evaluator is kept as
:func:`evaluate_batch_uint8` — it is the differential reference the packed
kernel is tested against, and the baseline of the simulator benchmarks.

Lane convention (see :mod:`repro.util.bitops`): bit ``b`` of lane word
``w`` is pattern ``w * 64 + b``; tail bits of the last word are kept zero
through every operation (inversion is XOR with the valid-bit mask), so two
packed node values can be compared word-for-word without spurious tail
differences.

A single stuck-at fault is injected by overriding one node's value with a
constant *after* it is computed — for single faults this is exactly
equivalent to rewiring the net to VDD/GND.  For whole-fault-universe work,
:class:`PackedSimulator` computes the fault-free node values once and
re-sweeps each fault only over the fault site's transitive fanout cone
(nodes outside the cone keep their fault-free words), which is what makes
detectability-table extraction and fault-coverage campaigns fast.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.logic.netlist import GateKind, Netlist
from repro.util.bitops import lane_count, lane_mask, pack_lanes, unpack_lanes

Fault = tuple[int, int]  # (node id, stuck value)


def evaluate(
    netlist: Netlist,
    inputs: Mapping[str, int] | Sequence[int],
    fault: Fault | None = None,
) -> dict[str, int]:
    """Evaluate one pattern; returns output name → value."""
    if isinstance(inputs, Mapping):
        vector = [int(inputs[netlist.input_name(i)]) for i in netlist.input_ids]
    else:
        vector = [int(v) for v in inputs]
    pattern = np.array([vector], dtype=np.uint8)
    result = evaluate_batch(netlist, pattern, fault=fault)[0]
    return dict(zip(netlist.output_names, (int(v) for v in result)))


def _check_patterns(netlist: Netlist, patterns: np.ndarray) -> np.ndarray:
    patterns = np.asarray(patterns, dtype=np.uint8)
    if patterns.ndim != 2 or patterns.shape[1] != netlist.num_inputs:
        raise ValueError(
            f"patterns must be (P, {netlist.num_inputs}), got {patterns.shape}"
        )
    return patterns


def evaluate_batch(
    netlist: Netlist,
    patterns: np.ndarray,
    fault: Fault | None = None,
) -> np.ndarray:
    """Evaluate many patterns at once (word-parallel, 64 patterns/lane).

    Parameters
    ----------
    patterns:
        ``(P, num_inputs)`` array of 0/1 values, column order matching
        ``netlist.input_ids``.
    fault:
        Optional single stuck-at fault ``(node_id, value)``.

    Returns
    -------
    ``(P, num_outputs)`` uint8 array, column order matching
    ``netlist.output_ids``.
    """
    patterns = _check_patterns(netlist, patterns)
    num_patterns = patterns.shape[0]
    if not netlist.output_ids:
        return np.zeros((num_patterns, 0), dtype=np.uint8)
    mask = lane_mask(num_patterns)
    packed_inputs = pack_lanes(np.ascontiguousarray(patterns.T))
    values = packed_node_values(netlist, packed_inputs, mask, fault=fault)
    out_words = np.stack([values[node] for node in netlist.output_ids])
    return np.ascontiguousarray(unpack_lanes(out_words, num_patterns).T)


def packed_node_values(
    netlist: Netlist,
    packed_inputs: np.ndarray,
    mask: np.ndarray,
    fault: Fault | None = None,
) -> list[np.ndarray]:
    """Word-parallel forward sweep over packed input lanes.

    ``packed_inputs`` is ``(num_inputs, W)`` uint64 (one lane row per
    primary input, in ``netlist.input_ids`` order) and ``mask`` the
    valid-bit mask from :func:`repro.util.bitops.lane_mask`.  Returns one
    ``(W,)`` uint64 lane array per node; every returned word has zero tail
    bits.
    """
    fault_node = fault[0] if fault is not None else -1
    zero = np.zeros(mask.shape[0], dtype=np.uint64)
    input_row = {node: idx for idx, node in enumerate(netlist.input_ids)}
    values: list[np.ndarray] = [None] * netlist.num_nodes  # type: ignore[list-item]
    for node, gate in enumerate(netlist.gates):
        if node == fault_node:
            values[node] = mask if fault[1] else zero  # type: ignore[index]
            continue
        if gate.kind is GateKind.INPUT:
            values[node] = packed_inputs[input_row[node]]
            continue
        values[node] = _packed_gate(gate, values, mask, zero)
    return values


def _packed_gate(
    gate,
    values: list[np.ndarray],
    mask: np.ndarray,
    zero: np.ndarray,
) -> np.ndarray:
    """One non-input gate's packed value from its computed fanin lanes."""
    kind = gate.kind
    if kind is GateKind.CONST0:
        return zero
    if kind is GateKind.CONST1:
        return mask
    if kind is GateKind.NOT:
        return values[gate.fanin[0]] ^ mask
    if kind is GateKind.BUF:
        return values[gate.fanin[0]]
    operands = [values[src] for src in gate.fanin]
    if kind in (GateKind.AND, GateKind.NAND):
        value = _reduce(np.bitwise_and, operands)
        if kind is GateKind.NAND:
            value = value ^ mask
    elif kind in (GateKind.OR, GateKind.NOR):
        value = _reduce(np.bitwise_or, operands)
        if kind is GateKind.NOR:
            value = value ^ mask
    elif kind in (GateKind.XOR, GateKind.XNOR):
        value = _reduce(np.bitwise_xor, operands)
        if kind is GateKind.XNOR:
            value = value ^ mask
    else:  # pragma: no cover - exhaustive above
        raise ValueError(f"unsupported gate kind {kind}")
    return value


class PackedSimulator:
    """Multi-fault parallel-pattern simulation with fault-free value reuse.

    The fault-free packed node values are computed once at construction;
    each fault is then a word-parallel re-sweep restarted at the fault
    site and limited to its transitive fanout cone — every node outside
    the cone keeps its fault-free lanes by construction, so per-fault cost
    scales with the cone, not the netlist.
    """

    def __init__(self, netlist: Netlist, patterns: np.ndarray) -> None:
        patterns = _check_patterns(netlist, patterns)
        self.netlist = netlist
        self.num_patterns = int(patterns.shape[0])
        self.mask = lane_mask(self.num_patterns)
        self._zero = np.zeros(lane_count(self.num_patterns), dtype=np.uint64)
        packed_inputs = pack_lanes(np.ascontiguousarray(patterns.T))
        self.good = packed_node_values(netlist, packed_inputs, self.mask)
        self._fanout: dict[int, list[int]] | None = None
        self._cones: dict[int, list[int]] = {}

    # ------------------------------------------------------------------
    # Fault-free side
    # ------------------------------------------------------------------
    def good_outputs(self) -> np.ndarray:
        """(P, num_outputs) fault-free responses."""
        return self._unpack_outputs(self.good)

    # ------------------------------------------------------------------
    # Faulty side
    # ------------------------------------------------------------------
    def cone(self, node: int) -> list[int]:
        """Strict transitive fanout of ``node`` in topological order."""
        cached = self._cones.get(node)
        if cached is not None:
            return cached
        if self._fanout is None:
            self._fanout = self.netlist.fanout_map()
        affected: set[int] = set()
        frontier = [node]
        while frontier:
            current = frontier.pop()
            for reader in self._fanout[current]:
                if reader not in affected:
                    affected.add(reader)
                    frontier.append(reader)
        result = sorted(affected)
        self._cones[node] = result
        return result

    def faulty_node_values(self, fault: Fault) -> list[np.ndarray]:
        """Per-node packed values under one stuck-at fault (cone re-sweep)."""
        node, value = int(fault[0]), int(fault[1])
        if not 0 <= node < self.netlist.num_nodes:
            raise ValueError(f"fault node {node} out of range")
        values = list(self.good)
        values[node] = self.mask if value else self._zero
        gates = self.netlist.gates
        for member in self.cone(node):
            values[member] = _packed_gate(
                gates[member], values, self.mask, self._zero
            )
        return values

    def faulty_outputs(self, fault: Fault) -> np.ndarray:
        """(P, num_outputs) responses under one stuck-at fault."""
        return self._unpack_outputs(self.faulty_node_values(fault))

    def fault_detected(self, fault: Fault) -> bool:
        """True iff some output differs from fault-free on some pattern.

        Only outputs inside the fault's cone (plus the fault site itself)
        are compared — everything else is fault-free by construction.
        """
        node = int(fault[0])
        observable = [
            out
            for out in self.netlist.output_ids
            if out == node or out in self._cone_set(node)
        ]
        if not observable:
            return False
        values = self.faulty_node_values(fault)
        return any(
            not np.array_equal(values[out], self.good[out]) for out in observable
        )

    def _cone_set(self, node: int) -> set[int]:
        return set(self.cone(node))

    def _unpack_outputs(self, values: list[np.ndarray]) -> np.ndarray:
        if not self.netlist.output_ids:
            return np.zeros((self.num_patterns, 0), dtype=np.uint8)
        out_words = np.stack([values[node] for node in self.netlist.output_ids])
        return np.ascontiguousarray(
            unpack_lanes(out_words, self.num_patterns).T
        )


def evaluate_batch_multi(
    netlist: Netlist,
    patterns: np.ndarray,
    faults: Sequence[Fault],
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Fault-free plus per-fault responses, good values computed once.

    Returns ``(good, bad)`` where ``good`` is the ``(P, num_outputs)``
    fault-free response matrix and ``bad[i]`` the responses under
    ``faults[i]``.  Equivalent to one fault-free and ``len(faults)``
    faulty :func:`evaluate_batch` calls, but the shared fault-free sweep
    runs once and each fault only re-simulates its fanout cone.
    """
    simulator = PackedSimulator(netlist, patterns)
    return (
        simulator.good_outputs(),
        [simulator.faulty_outputs(fault) for fault in faults],
    )


# ----------------------------------------------------------------------
# uint8 reference path (pre-kernel semantics, kept as the differential
# baseline for tests and benchmarks)
# ----------------------------------------------------------------------
def evaluate_batch_uint8(
    netlist: Netlist,
    patterns: np.ndarray,
    fault: Fault | None = None,
) -> np.ndarray:
    """One-uint8-lane-per-pattern reference evaluator.

    Bit-for-bit the same results as :func:`evaluate_batch`; the packed
    kernel is differentially tested against this implementation.
    """
    values = node_values(netlist, patterns, fault=fault)
    return np.stack(
        [values[node] for node in netlist.output_ids], axis=1
    ) if netlist.output_ids else np.zeros((patterns.shape[0], 0), dtype=np.uint8)


def node_values(
    netlist: Netlist,
    patterns: np.ndarray,
    fault: Fault | None = None,
) -> list[np.ndarray]:
    """Per-node uint8 value arrays for a pattern batch (reference path)."""
    patterns = _check_patterns(netlist, patterns)
    num_patterns = patterns.shape[0]
    fault_node = fault[0] if fault is not None else -1
    fault_value = None
    if fault is not None:
        fault_value = np.full(num_patterns, fault[1], dtype=np.uint8)

    input_column = {node: idx for idx, node in enumerate(netlist.input_ids)}
    values: list[np.ndarray] = [None] * netlist.num_nodes  # type: ignore[list-item]
    for node, gate in enumerate(netlist.gates):
        kind = gate.kind
        if kind is GateKind.INPUT:
            value = np.ascontiguousarray(patterns[:, input_column[node]])
        elif kind is GateKind.CONST0:
            value = np.zeros(num_patterns, dtype=np.uint8)
        elif kind is GateKind.CONST1:
            value = np.ones(num_patterns, dtype=np.uint8)
        elif kind is GateKind.NOT:
            value = values[gate.fanin[0]] ^ 1
        elif kind is GateKind.BUF:
            value = values[gate.fanin[0]]
        else:
            operands = [values[src] for src in gate.fanin]
            if kind in (GateKind.AND, GateKind.NAND):
                value = _reduce(np.bitwise_and, operands)
                if kind is GateKind.NAND:
                    value = value ^ 1
            elif kind in (GateKind.OR, GateKind.NOR):
                value = _reduce(np.bitwise_or, operands)
                if kind is GateKind.NOR:
                    value = value ^ 1
            elif kind in (GateKind.XOR, GateKind.XNOR):
                value = _reduce(np.bitwise_xor, operands)
                if kind is GateKind.XNOR:
                    value = value ^ 1
            else:  # pragma: no cover - exhaustive above
                raise ValueError(f"unsupported gate kind {kind}")
        if node == fault_node:
            value = fault_value
        values[node] = value
    return values


def _reduce(op, operands: list[np.ndarray]) -> np.ndarray:
    result = operands[0]
    for operand in operands[1:]:
        result = op(result, operand)
    return result
