"""Gate-level netlist intermediate representation.

A :class:`Netlist` is a DAG of :class:`Gate` nodes built append-only, so node
ids are already a topological order (a gate may only reference earlier
nodes).  The builder structurally hashes gates and folds constants, which
also gives free sharing of identical product terms across the multi-output
covers produced by :mod:`repro.logic.synthesis`.

The netlist models the *combinational* part of a circuit; the flip-flop
boundary of an FSM lives in :class:`repro.logic.synthesis.SynthesisResult`
(which records how many state bits feed back) and sequential behaviour is
simulated by the FSM/CED layers by looping the next-state outputs back into
the present-state inputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence


class GateKind(str, Enum):
    """Primitive node types (arbitrary fan-in for the symmetric gates)."""

    INPUT = "input"
    CONST0 = "const0"
    CONST1 = "const1"
    NOT = "not"
    BUF = "buf"
    AND = "and"
    OR = "or"
    NAND = "nand"
    NOR = "nor"
    XOR = "xor"
    XNOR = "xnor"


_SYMMETRIC = {GateKind.AND, GateKind.OR, GateKind.NAND, GateKind.NOR,
              GateKind.XOR, GateKind.XNOR}
_INVERTING = {GateKind.NAND: GateKind.AND, GateKind.NOR: GateKind.OR,
              GateKind.XNOR: GateKind.XOR}


@dataclass(frozen=True)
class Gate:
    """A single netlist node; ``fanin`` are node ids of earlier nodes."""

    kind: GateKind
    fanin: tuple[int, ...]
    name: str = ""


@dataclass
class Netlist:
    """Append-only combinational DAG with named inputs and outputs."""

    gates: list[Gate] = field(default_factory=list)
    input_ids: list[int] = field(default_factory=list)
    output_ids: list[int] = field(default_factory=list)
    output_names: list[str] = field(default_factory=list)
    _hash_cons: dict[tuple, int] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_input(self, name: str) -> int:
        node = len(self.gates)
        self.gates.append(Gate(GateKind.INPUT, (), name))
        self.input_ids.append(node)
        return node

    def add_const(self, value: int) -> int:
        kind = GateKind.CONST1 if value else GateKind.CONST0
        return self._intern(kind, ())

    def add_not(self, source: int) -> int:
        self._check_refs((source,))
        gate = self.gates[source]
        if gate.kind is GateKind.NOT:
            return gate.fanin[0]
        if gate.kind is GateKind.CONST0:
            return self.add_const(1)
        if gate.kind is GateKind.CONST1:
            return self.add_const(0)
        return self._intern(GateKind.NOT, (source,))

    def add_gate(self, kind: GateKind, fanin: Sequence[int]) -> int:
        """Add a gate with simplification and structural hashing."""
        kind = GateKind(kind)
        self._check_refs(fanin)
        if kind is GateKind.NOT:
            if len(fanin) != 1:
                raise ValueError("NOT takes exactly one input")
            return self.add_not(fanin[0])
        if kind is GateKind.BUF:
            if len(fanin) != 1:
                raise ValueError("BUF takes exactly one input")
            return fanin[0]
        if kind in (GateKind.CONST0, GateKind.CONST1):
            return self.add_const(1 if kind is GateKind.CONST1 else 0)
        if kind is GateKind.INPUT:
            raise ValueError("use add_input for primary inputs")
        if kind in _INVERTING:
            return self.add_not(self.add_gate(_INVERTING[kind], fanin))
        if kind is GateKind.AND:
            return self._add_and_or(GateKind.AND, fanin)
        if kind is GateKind.OR:
            return self._add_and_or(GateKind.OR, fanin)
        if kind is GateKind.XOR:
            return self._add_xor(fanin)
        raise ValueError(f"unsupported gate kind {kind}")  # pragma: no cover

    def add_output(self, name: str, node: int) -> None:
        self._check_refs((node,))
        self.output_ids.append(node)
        self.output_names.append(name)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.gates)

    @property
    def num_inputs(self) -> int:
        return len(self.input_ids)

    @property
    def num_outputs(self) -> int:
        return len(self.output_ids)

    def logic_nodes(self) -> list[int]:
        """Ids of all non-input, non-constant nodes."""
        skip = {GateKind.INPUT, GateKind.CONST0, GateKind.CONST1}
        return [i for i, g in enumerate(self.gates) if g.kind not in skip]

    def fanout_map(self) -> dict[int, list[int]]:
        """Node id → list of node ids that read it."""
        fanout: dict[int, list[int]] = {i: [] for i in range(len(self.gates))}
        for node, gate in enumerate(self.gates):
            for src in gate.fanin:
                fanout[src].append(node)
        return fanout

    def input_name(self, node: int) -> str:
        gate = self.gates[node]
        if gate.kind is not GateKind.INPUT:
            raise ValueError(f"node {node} is not an input")
        return gate.name

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_refs(self, fanin: Sequence[int]) -> None:
        for src in fanin:
            if src < 0 or src >= len(self.gates):
                raise ValueError(f"fanin reference {src} out of range")

    def _intern(self, kind: GateKind, fanin: tuple[int, ...]) -> int:
        key = (kind, tuple(sorted(fanin)) if kind in _SYMMETRIC else fanin)
        node = self._hash_cons.get(key)
        if node is None:
            node = len(self.gates)
            self.gates.append(Gate(kind, fanin))
            self._hash_cons[key] = node
        return node

    def _add_and_or(self, kind: GateKind, fanin: Sequence[int]) -> int:
        absorbing = GateKind.CONST0 if kind is GateKind.AND else GateKind.CONST1
        identity = GateKind.CONST1 if kind is GateKind.AND else GateKind.CONST0
        seen: list[int] = []
        for src in fanin:
            gate_kind = self.gates[src].kind
            if gate_kind is absorbing:
                return self.add_const(0 if kind is GateKind.AND else 1)
            if gate_kind is identity:
                continue
            if src not in seen:
                seen.append(src)
        # x AND NOT x = 0; x OR NOT x = 1.
        for src in seen:
            gate = self.gates[src]
            if gate.kind is GateKind.NOT and gate.fanin[0] in seen:
                return self.add_const(0 if kind is GateKind.AND else 1)
        if not seen:
            return self.add_const(1 if kind is GateKind.AND else 0)
        if len(seen) == 1:
            return seen[0]
        return self._intern(kind, tuple(sorted(seen)))

    def _add_xor(self, fanin: Sequence[int]) -> int:
        invert = False
        counts: dict[int, int] = {}
        for src in fanin:
            gate = self.gates[src]
            if gate.kind is GateKind.CONST1:
                invert = not invert
                continue
            if gate.kind is GateKind.CONST0:
                continue
            if gate.kind is GateKind.NOT:
                invert = not invert
                src = gate.fanin[0]
            counts[src] = counts.get(src, 0) + 1
        operands = sorted(src for src, cnt in counts.items() if cnt % 2)
        if not operands:
            return self.add_const(1 if invert else 0)
        if len(operands) == 1:
            node = operands[0]
        else:
            node = self._intern(GateKind.XOR, tuple(operands))
        return self.add_not(node) if invert else node
