"""Espresso-style heuristic two-level minimization.

This is a from-scratch reimplementation of the EXPAND → IRREDUNDANT → REDUCE
improvement loop popularised by Espresso, operating against dense on-set /
don't-care-set truth tables (controller logic in this project never exceeds
~16 variables, see :data:`repro.logic.cover.MAX_DENSE_VARS`).

It is not a literal port: expansion order and literal-raising order use
simple deterministic heuristics.  What matters for the reproduction is that
(a) the result is always a *correct* cover (asserted on every call:
``on ⊆ cover ⊆ on ∪ dc``), and (b) the cube/literal counts are close enough
to Espresso's that relative hardware-cost comparisons hold.  Tests compare
its cube counts against the exact :mod:`repro.logic.qm` minimum on small
functions.
"""

from __future__ import annotations

import numpy as np

from repro.logic.cover import Cover, _check_dense_arity
from repro.logic.cube import Cube

_MAX_PASSES = 12


def espresso(
    num_vars: int,
    on: np.ndarray,
    dc: np.ndarray | None = None,
    initial: Cover | None = None,
) -> Cover:
    """Minimize a single-output incompletely-specified function.

    Parameters
    ----------
    num_vars:
        Number of input variables.
    on:
        Dense boolean array of length ``2**num_vars``: required minterms.
    dc:
        Dense boolean don't-care set (disjoint from ``on``; overlap is
        resolved in favour of ``on``).
    initial:
        Optional starting cover (e.g. the cubes of an FSM specification).
        It must cover ``on`` and stay inside ``on | dc``; when omitted the
        canonical minterm cover of ``on`` is used.
    """
    _check_dense_arity(num_vars)
    on = np.asarray(on, dtype=bool)
    if on.shape != (1 << num_vars,):
        raise ValueError("on-set shape does not match num_vars")
    if dc is None:
        dc = np.zeros_like(on)
    else:
        dc = np.asarray(dc, dtype=bool).copy()
        if dc.shape != on.shape:
            raise ValueError("dc-set shape does not match on-set")
        dc &= ~on

    if not on.any():
        return Cover.empty(num_vars)
    valid = on | dc
    if valid.all():
        return Cover.universal(num_vars)

    if initial is None:
        cover = Cover.from_dense(on)
    else:
        cover = Cover(num_vars, list(initial.cubes))
        _assert_correct(cover, on, valid, context="initial cover")

    cubes = list(cover.cubes)
    best_cost = _cost(cubes)
    for _ in range(_MAX_PASSES):
        cubes = _expand(num_vars, cubes, valid)
        cubes = _irredundant(num_vars, cubes, on)
        cost = _cost(cubes)
        if cost >= best_cost:
            break
        best_cost = cost
        cubes = _reduce(num_vars, cubes, on)

    cubes = _expand(num_vars, cubes, valid)
    cubes = _irredundant(num_vars, cubes, on)
    result = Cover(num_vars, sorted(set(cubes)))
    _assert_correct(result, on, valid, context="minimized cover")
    return result


def _cost(cubes: list[Cube]) -> tuple[int, int]:
    return (len(cubes), sum(cube.num_literals for cube in cubes))


def _assert_correct(
    cover: Cover, on: np.ndarray, valid: np.ndarray, context: str
) -> None:
    dense = cover.dense()
    if (on & ~dense).any():
        raise AssertionError(f"{context} fails to cover the on-set")
    if (dense & ~valid).any():
        raise AssertionError(f"{context} intersects the off-set")


# ----------------------------------------------------------------------
# EXPAND: grow each cube into a prime of (on ∪ dc), absorbing others.
# ----------------------------------------------------------------------
def _expand(num_vars: int, cubes: list[Cube], valid: np.ndarray) -> list[Cube]:
    # Smallest cubes first: they benefit most and their expansion can absorb
    # the bigger ones processed later.
    pending = sorted(set(cubes), key=lambda c: (-c.num_literals, c.care, c.value))
    result: list[Cube] = []
    while pending:
        cube = pending.pop(0)
        if any(done.contains(cube) for done in result):
            continue
        cube = _expand_one(num_vars, cube, valid)
        pending = [c for c in pending if not cube.contains(c)]
        result = [c for c in result if not cube.contains(c)]
        result.append(cube)
    return result


def _expand_one(num_vars: int, cube: Cube, valid: np.ndarray) -> Cube:
    """Raise literals of ``cube`` while it stays inside ``valid``."""
    changed = True
    while changed:
        changed = False
        # Prefer raising the literal whose opposite half is "most valid"
        # (all-or-nothing here, so order is just deterministic ascending).
        for var in range(num_vars):
            bit = 1 << var
            if not cube.care & bit:
                continue
            flipped = Cube(num_vars, cube.care, cube.value ^ bit)
            if valid[flipped.minterm_array()].all():
                cube = cube.without_literal(var)
                changed = True
    return cube


# ----------------------------------------------------------------------
# IRREDUNDANT: drop cubes whose on-minterms are covered elsewhere.
# ----------------------------------------------------------------------
def _irredundant(num_vars: int, cubes: list[Cube], on: np.ndarray) -> list[Cube]:
    counts = np.zeros(on.shape[0], dtype=np.int32)
    arrays = {}
    for cube in cubes:
        arr = cube.minterm_array()
        arrays[cube] = arr
        counts[arr] += 1
    kept = list(cubes)
    # Try to drop least-useful cubes first (fewest minterms).
    for cube in sorted(cubes, key=lambda c: (c.size, -c.num_literals)):
        arr = arrays[cube]
        mask = on[arr]
        if not mask.any() or (counts[arr][mask] >= 2).all():
            counts[arr] -= 1
            kept.remove(cube)
    return kept


# ----------------------------------------------------------------------
# REDUCE: shrink each cube around its uniquely-covered on-minterms so the
# next EXPAND pass can escape local minima.
# ----------------------------------------------------------------------
def _reduce(num_vars: int, cubes: list[Cube], on: np.ndarray) -> list[Cube]:
    counts = np.zeros(on.shape[0], dtype=np.int32)
    arrays = {}
    for cube in cubes:
        arr = cube.minterm_array()
        arrays[cube] = arr
        counts[arr] += 1
    reduced: list[Cube] = []
    for cube in cubes:
        arr = arrays[cube]
        unique_on = arr[on[arr] & (counts[arr] == 1)]
        if unique_on.size == 0:
            counts[arr] -= 1
            continue
        shrunk = _supercube_of_minterms(num_vars, unique_on)
        if shrunk != cube:
            counts[arr] -= 1
            counts[shrunk.minterm_array()] += 1
        reduced.append(shrunk)
    return reduced


def _supercube_of_minterms(num_vars: int, minterms: np.ndarray) -> Cube:
    """Smallest cube containing all given minterms."""
    ones = int(np.bitwise_or.reduce(minterms.astype(np.int64)))
    zeros = int(
        np.bitwise_or.reduce((~minterms.astype(np.int64)) & ((1 << num_vars) - 1))
    )
    care = ((1 << num_vars) - 1) & ~(ones & zeros)
    value = ones & care
    return Cube(num_vars, care, value)
