"""Cubes: products of literals over a fixed set of binary variables.

A cube over ``num_vars`` variables is stored as a pair of bitmasks:

* ``care``  — bit ``j`` set iff variable ``j`` appears as a literal;
* ``value`` — for caring positions, the polarity of the literal
  (``value`` is always normalised so that bits outside ``care`` are zero).

The all-don't-care cube (``care == 0``) is the universal cube covering every
minterm.  Cubes are immutable and hashable so covers can deduplicate them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.util.bitops import minterm_indices


@dataclass(frozen=True, order=True)
class Cube:
    """An immutable product term over ``num_vars`` binary variables."""

    num_vars: int
    care: int
    value: int

    def __post_init__(self) -> None:
        if self.num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        universe = (1 << self.num_vars) - 1
        if self.care & ~universe:
            raise ValueError("care mask has bits beyond num_vars")
        if self.value & ~self.care:
            # Normalise: value bits are only meaningful where care is set.
            object.__setattr__(self, "value", self.value & self.care)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def universal(cls, num_vars: int) -> "Cube":
        """The cube covering the whole Boolean space."""
        return cls(num_vars, 0, 0)

    @classmethod
    def from_string(cls, text: str) -> "Cube":
        """Parse a positional-cube string, e.g. ``"1-0"``.

        Character ``i`` of the string is variable ``i`` (so the string reads
        variable 0 first).  ``0``/``1`` are literals, ``-`` (or ``2``) is a
        don't-care.
        """
        care = 0
        value = 0
        for position, char in enumerate(text):
            if char == "1":
                care |= 1 << position
                value |= 1 << position
            elif char == "0":
                care |= 1 << position
            elif char in "-2":
                continue
            else:
                raise ValueError(f"invalid cube character {char!r} in {text!r}")
        return cls(len(text), care, value)

    @classmethod
    def from_minterm(cls, minterm: int, num_vars: int) -> "Cube":
        """The fully-specified cube covering exactly one minterm."""
        universe = (1 << num_vars) - 1
        if minterm & ~universe:
            raise ValueError("minterm has bits beyond num_vars")
        return cls(num_vars, universe, minterm)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def num_literals(self) -> int:
        """Number of specified literals."""
        return bin(self.care).count("1")

    @property
    def size(self) -> int:
        """Number of minterms covered."""
        return 1 << (self.num_vars - self.num_literals)

    def contains_minterm(self, minterm: int) -> bool:
        """True iff the cube covers the given minterm."""
        return (minterm & self.care) == self.value

    def contains(self, other: "Cube") -> bool:
        """True iff every minterm of ``other`` is covered by this cube."""
        self._check_compatible(other)
        if self.care & ~other.care:
            return False
        return (other.value & self.care) == self.value

    def intersects(self, other: "Cube") -> bool:
        """True iff the two cubes share at least one minterm."""
        self._check_compatible(other)
        common = self.care & other.care
        return (self.value & common) == (other.value & common)

    def intersection(self, other: "Cube") -> "Cube | None":
        """The cube of shared minterms, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Cube(
            self.num_vars,
            self.care | other.care,
            self.value | other.value,
        )

    def distance(self, other: "Cube") -> int:
        """Number of variables on which the cubes conflict (0 = intersect)."""
        self._check_compatible(other)
        common = self.care & other.care
        return bin((self.value ^ other.value) & common).count("1")

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both cubes."""
        self._check_compatible(other)
        common = self.care & other.care
        agree = common & ~(self.value ^ other.value)
        return Cube(self.num_vars, agree, self.value & agree)

    def without_literal(self, var: int) -> "Cube":
        """Copy of the cube with variable ``var`` made a don't-care."""
        bit = 1 << var
        return Cube(self.num_vars, self.care & ~bit, self.value & ~bit)

    def with_literal(self, var: int, polarity: int) -> "Cube":
        """Copy of the cube with variable ``var`` fixed to ``polarity``."""
        if polarity not in (0, 1):
            raise ValueError("polarity must be 0 or 1")
        bit = 1 << var
        value = (self.value & ~bit) | (bit if polarity else 0)
        return Cube(self.num_vars, self.care | bit, value)

    def cofactor(self, var: int, polarity: int) -> "Cube | None":
        """Shannon cofactor with respect to ``var = polarity``.

        Returns ``None`` when the cube does not intersect that half-space;
        otherwise the cube with the variable dropped.
        """
        bit = 1 << var
        if self.care & bit:
            actual = 1 if self.value & bit else 0
            if actual != polarity:
                return None
        return self.without_literal(var)

    def minterms(self) -> Iterator[int]:
        """Iterate covered minterms (exponential in free variables)."""
        free = [j for j in range(self.num_vars) if not (self.care >> j) & 1]
        for assignment in range(1 << len(free)):
            minterm = self.value
            for idx, var in enumerate(free):
                if (assignment >> idx) & 1:
                    minterm |= 1 << var
            yield minterm

    def minterm_array(self) -> np.ndarray:
        """Covered minterms as a numpy int64 array."""
        return minterm_indices(self.care, self.value, self.num_vars)

    def to_string(self) -> str:
        """Positional-cube string, variable 0 first."""
        chars = []
        for var in range(self.num_vars):
            if (self.care >> var) & 1:
                chars.append("1" if (self.value >> var) & 1 else "0")
            else:
                chars.append("-")
        return "".join(chars)

    def literals(self) -> list[tuple[int, int]]:
        """List of ``(variable, polarity)`` pairs, ascending by variable."""
        return [
            (var, 1 if (self.value >> var) & 1 else 0)
            for var in range(self.num_vars)
            if (self.care >> var) & 1
        ]

    def _check_compatible(self, other: "Cube") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError(
                f"cube arity mismatch: {self.num_vars} vs {other.num_vars}"
            )

    def __str__(self) -> str:  # pragma: no cover - convenience only
        return self.to_string()
