"""Long-lived design service: daemon, hot cache, coalescing, client.

Every CLI invocation is a cold process — it re-imports numpy, re-opens
the disk cache and (for parallel runs) spins up a fresh worker pool even
when the answer is already cached.  This package keeps all of that warm
in one persistent daemon (``repro-ced serve``):

* :mod:`repro.service.hotcache`  — in-memory LRU layered above the disk
  :class:`repro.runtime.cache.ArtifactCache` (same fingerprint keying);
* :mod:`repro.service.queries`   — request normalisation, content keys
  and the picklable worker the daemon's pool executes;
* :mod:`repro.service.daemon`    — the HTTP daemon itself (TCP or unix
  socket, request coalescing, bounded backpressure, graceful drain);
* :mod:`repro.service.client`    — a stdlib client; ``repro-ced design
  --server ADDR`` delegates through it.

See ``docs/service-api.md`` for the wire protocol.
"""

from repro.service.client import ServiceClient, ServiceError, parse_address
from repro.service.daemon import (
    DesignService,
    RunningService,
    ServiceConfig,
    serve,
)
from repro.service.hotcache import HotCache

__all__ = [
    "DesignService",
    "HotCache",
    "RunningService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "parse_address",
    "serve",
]
