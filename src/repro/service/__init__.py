"""Long-lived design service: daemon, router, peer cache, client.

Every CLI invocation is a cold process — it re-imports numpy, re-opens
the disk cache and (for parallel runs) spins up a fresh worker pool even
when the answer is already cached.  This package keeps all of that warm
in one persistent daemon (``repro-ced serve``), and scales it out to a
sharded fleet (``repro-ced route``):

* :mod:`repro.service.hotcache`  — in-memory LRU layered above the disk
  :class:`repro.runtime.cache.ArtifactCache` (same fingerprint keying);
* :mod:`repro.service.queries`   — request normalisation, content keys
  and the picklable worker the daemon's pool executes;
* :mod:`repro.service.daemon`    — the HTTP daemon itself (TCP or unix
  socket, request coalescing, bounded backpressure, graceful drain);
* :mod:`repro.service.peering`   — read-through peer artifact cache: a
  replica missing an artifact fetches it from a warm peer instead of
  re-solving;
* :mod:`repro.service.router`    — front-tier router: rendezvous-hashed
  dispatch over replicas, health-checked failover, bounded retry and
  hedged re-dispatch of stragglers;
* :mod:`repro.service.client`    — a stdlib client; ``repro-ced design
  --server ADDR`` delegates through it (with jittered-backoff retry on
  busy replicas).

See ``docs/service-api.md`` for the wire protocol.
"""

from repro.service.client import (
    DEFAULT_RETRY,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    parse_address,
)
from repro.service.daemon import (
    DesignService,
    RunningService,
    ServiceConfig,
    serve,
)
from repro.service.hotcache import HotCache
from repro.service.peering import PeerCache, peer_cache_for
from repro.service.router import (
    RouterConfig,
    RouterService,
    RunningRouter,
    serve_router,
)

__all__ = [
    "DEFAULT_RETRY",
    "DesignService",
    "HotCache",
    "PeerCache",
    "RetryPolicy",
    "RouterConfig",
    "RouterService",
    "RunningRouter",
    "RunningService",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "parse_address",
    "peer_cache_for",
    "serve",
    "serve_router",
]
