"""In-memory LRU hot cache for the design service.

The disk :class:`repro.runtime.cache.ArtifactCache` makes warm requests
cheap (no recompute), but a daemon can do better: the most recent query
*responses* are kept in memory as already-serialised JSON, so a repeated
request costs one dictionary lookup — no pickle load, no disk I/O, no
re-serialisation.  Keys are the same content fingerprints
(:func:`repro.runtime.cache.fingerprint`, salted by package version and
cache schema) that address the disk cache, so a hot entry can never
outlive the artifacts it was derived from across releases.

The cache is thread-safe: the daemon serves each HTTP request on its own
thread and they all share one instance.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Any


@dataclass
class HotCacheStats:
    """Counters of one hot-cache instance (``/stats`` reports these)."""

    entries: int = 0
    max_entries: int = 0
    hits: int = 0
    misses: int = 0
    evictions: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class HotCache:
    """A bounded LRU map: most-recently-used entries survive eviction.

    ``get`` refreshes recency; ``put`` evicts the least-recently-used
    entry once ``max_entries`` is exceeded.  Values are opaque (the
    daemon stores canonical JSON strings).
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("hot cache needs room for at least one entry")
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key: str) -> tuple[bool, Any]:
        """(found, value); a hit moves the entry to most-recently-used."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._hits += 1
                return True, self._entries[key]
            self._misses += 1
            return False, None

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns the count removed (counters stay)."""
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            return removed

    def stats(self) -> HotCacheStats:
        with self._lock:
            return HotCacheStats(
                entries=len(self._entries),
                max_entries=self.max_entries,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )
