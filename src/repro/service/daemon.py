"""The design-service daemon: HTTP over TCP or a unix socket, stdlib only.

One long-lived process owns everything a cold CLI run pays for on every
invocation: the imported numpy/scipy stack, an open disk
:class:`~repro.runtime.cache.ArtifactCache`, a reusable worker pool, and
an in-memory :class:`~repro.service.hotcache.HotCache` of serialised
query responses.  Request lifecycle:

1. **Hot cache.**  The normalised request's content key
   (:func:`repro.service.queries.query_key`) is looked up in the LRU;
   a hit is served as the stored canonical-JSON bytes (``meta.hot_cache``
   is true) without touching the pool.
2. **Coalescing.**  A miss joins the in-flight *flight* for its key if
   one exists (``meta.coalesced`` true — the request does no work and
   waits for the leader's result), else it becomes the leader.
3. **Backpressure.**  A new leader past ``queue_limit`` concurrent
   computations is rejected with HTTP 429 (``{"error": "busy"}``) —
   the daemon sheds load instead of queueing unboundedly.
4. **Compute.**  The leader runs
   :func:`~repro.service.queries.service_worker` on the daemon-owned
   ``ProcessPoolExecutor`` (created once at startup; ``workers=0``
   computes inline on the request thread), bounded by the per-request
   ``timeout`` via the executor's SIGALRM machinery.
5. **Drain.**  SIGTERM/SIGINT flip the service into draining mode: new
   requests get HTTP 503, in-flight ones finish (the server joins its
   handler threads on close), then the pool and journal shut down.

Every response carries ``meta`` (hot_cache / coalesced / elapsed_ms /
key) alongside the deterministic ``result``; ``/healthz`` and ``/stats``
expose liveness and the counters.  With ``journal_path`` set, worker
traces and per-request ``type: "request"`` records stream into the PR-4
run journal (`docs/journal-schema.md`).
"""

from __future__ import annotations

import json
import os
import signal
import socketserver
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Callable

from repro import __version__
from repro.fsm.benchmarks import UnknownBenchmarkError
from repro.runtime.executor import JobTimeout, invoke_with_timeout
from repro.runtime.trace import JournalWriter
from repro.service.hotcache import HotCache
from repro.service.queries import (
    QUERY_KINDS,
    canonical_json,
    query_key,
    query_label,
    service_worker,
    warmup_worker,
)


@dataclass(frozen=True)
class ServiceConfig:
    """Daemon knobs (``repro-ced serve`` flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8537
    #: Serve over a unix domain socket instead of TCP when set.
    socket_path: str | None = None
    #: Pool processes owned by the daemon; 0 computes inline on the
    #: request thread (useful for tests and tiny deployments).
    workers: int = 1
    hot_cache_size: int = 256
    #: Maximum concurrent computations (leaders); more gets HTTP 429.
    queue_limit: int = 8
    #: Per-request wall-clock budget (executor SIGALRM; None = unlimited).
    timeout: float | None = None
    cache_dir: str | None = None
    cache: bool = True
    journal_path: str | None = None
    verbose: bool = False
    #: Peer replica addresses for the read-through artifact cache
    #: (``repro-ced serve --peer``); more can join at runtime via
    #: ``POST /cache/peer``.
    peers: tuple[str, ...] = ()
    #: Per-peer-fetch timeout; a slow peer degrades to a local re-solve.
    peer_timeout: float = 5.0
    #: Seconds a peer miss is remembered before peers are asked again.
    peer_negative_ttl: float = 30.0
    #: Design knowledge base (``repro-ced serve --knowledge``): workers
    #: record completed solves here and — unless ``warm_start`` is off —
    #: seed searches with the nearest stored neighbor.  ``GET /query``
    #: analytics read the same store (falling back to the default store
    #: path when unset; see :func:`repro.knowledge.store.open_store`).
    knowledge_path: str | None = None
    warm_start: bool = True


class _Flight:
    """One in-flight computation; followers wait on ``event``."""

    __slots__ = ("event", "result_json", "error", "error_status")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result_json: str | None = None
        self.error: str | None = None
        self.error_status = 500


class DesignService:
    """Request handling, shared state and counters (HTTP layer aside).

    Thread-safe: one instance is shared by every handler thread.  The
    ``worker`` hook exists for tests (inject a gated/instant worker);
    production uses :func:`~repro.service.queries.service_worker`.
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        worker: Callable[[tuple, bool], dict] = service_worker,
    ) -> None:
        self.config = config
        self._worker = worker
        self.hot = HotCache(config.hot_cache_size)
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._inflight: dict[str, _Flight] = {}
        self._draining = False
        self._pool = None
        self._journal: JournalWriter | None = None
        self._started = time.monotonic()
        # Counters (all guarded by _lock).
        self._requests = 0
        self._by_kind = {kind: 0 for kind in QUERY_KINDS}
        self._hot_hits = 0
        self._coalesced = 0
        self._busy_rejections = 0
        self._computed = 0
        self._errors = 0
        self._timeouts = 0
        self._disk_hits = 0
        self._disk_misses = 0
        self._disk_stage_hits: dict[str, int] = {}
        self._disk_stage_misses: dict[str, int] = {}
        # Cache peering (guarded by _lock; served entries via _artifacts).
        self._peers: list[str] = list(config.peers)
        self._artifacts = None
        self._peer_totals: dict[str, int] = {}
        self._cache_serves = 0
        self._cache_serve_misses = 0
        # Knowledge store: lazily re-read, shared by /query and /stats.
        from repro.knowledge.store import open_store

        self._knowledge = open_store(config.knowledge_path)

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self.config.journal_path:
            self._journal = JournalWriter(
                Path(self.config.journal_path), name="serve"
            )
        if self.config.cache:
            from repro.runtime.cache import open_cache

            # The daemon's own handle on the shared disk cache, used only
            # to serve raw entry bytes to peers (workers own their own).
            self._artifacts = open_cache(self.config.cache_dir)
        if self.config.workers > 0:
            from concurrent.futures import ProcessPoolExecutor

            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
            # Fire-and-forget warmups: pay the numpy/scipy import cost at
            # startup, not on the first real request.
            for _ in range(self.config.workers):
                self._pool.submit(warmup_worker, None, False)

    def begin_drain(self) -> None:
        """Stop accepting work; in-flight requests keep running."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def wait_idle(self, timeout: float | None = None) -> bool:
        """Block until no computation is in flight; False on timeout."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._inflight:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._idle.wait(remaining)
        return True

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._journal is not None:
            self._journal.write({"type": "summary", **self._stats_locked()})
            self._journal.close()
            self._journal = None

    # -- cache peering -------------------------------------------------
    def peers(self) -> list[str]:
        with self._lock:
            return list(self._peers)

    def add_peers(self, addresses: list) -> list[str]:
        """Register peer daemons at runtime (``POST /cache/peer``).

        Addresses are validated with the client's parser; duplicates are
        dropped.  Returns the full peer set after the merge.  New
        computations pick the updated set up immediately (the worker
        payload carries it per request).
        """
        from repro.service.client import parse_address

        if not isinstance(addresses, list) or not all(
            isinstance(address, str) for address in addresses
        ):
            raise ValueError("'peers' must be a list of address strings")
        for address in addresses:
            parse_address(address)  # raises ValueError on garbage
        with self._lock:
            for address in addresses:
                if address not in self._peers:
                    self._peers.append(address)
            return list(self._peers)

    def serve_cache_entry(self, stage: str, key: str) -> bytes | None:
        """Raw entry bytes for ``GET /cache/<stage>/<key>`` (None = 404)."""
        if self._artifacts is None:
            return None
        payload = self._artifacts.read_entry_bytes(stage, key)
        with self._lock:
            if payload is None:
                self._cache_serve_misses += 1
            else:
                self._cache_serves += 1
        return payload

    def _peering_payload(self) -> dict | None:
        with self._lock:
            peers = list(self._peers)
        if not peers or not self.config.cache:
            return None
        return {
            "peers": peers,
            "timeout": self.config.peer_timeout,
            "negative_ttl": self.config.peer_negative_ttl,
        }

    # -- read endpoints ------------------------------------------------
    def healthz(self) -> dict:
        return {
            "status": "draining" if self._draining else "ok",
            "version": __version__,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
        }

    def _stats_locked(self) -> dict:
        return {
            "version": __version__,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "draining": self._draining,
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "inflight": len(self._inflight),
            "requests": {
                "total": self._requests,
                "by_kind": dict(self._by_kind),
                "hot_cache_hits": self._hot_hits,
                "coalesced": self._coalesced,
                "busy_rejections": self._busy_rejections,
                "computed": self._computed,
                "errors": self._errors,
                "timeouts": self._timeouts,
            },
            "hot_cache": self.hot.stats().as_dict(),
            "peer_cache": {
                "peers": list(self._peers),
                # Read-through fetches by this daemon's workers: a "hit"
                # is an artifact pulled from a warm peer instead of
                # re-solved locally.
                "hits": self._peer_totals.get("hits", 0),
                "misses": self._peer_totals.get("misses", 0),
                "cooldown_skips": self._peer_totals.get("cooldown_skips", 0),
                "errors": self._peer_totals.get("errors", 0),
                "fetched_bytes": self._peer_totals.get("fetched_bytes", 0),
                # Entries this daemon served *to* peers.
                "served": self._cache_serves,
                "serve_misses": self._cache_serve_misses,
            },
            "knowledge": {
                "path": str(self._knowledge.path),
                "recording": self.config.knowledge_path is not None,
                "warm_start": (
                    self.config.knowledge_path is not None
                    and self.config.warm_start
                ),
                "records": len(self._knowledge.records()),
            },
            "disk_cache": {
                "hits": self._disk_hits,
                "misses": self._disk_misses,
                # Per-stage reuse: "tables-state" hits here are sweeps
                # that extended a persisted enumeration frontier instead
                # of re-enumerating from scratch.
                "by_stage": {
                    stage: {
                        "hits": self._disk_stage_hits.get(stage, 0),
                        "misses": self._disk_stage_misses.get(stage, 0),
                    }
                    for stage in sorted(
                        set(self._disk_stage_hits)
                        | set(self._disk_stage_misses)
                    )
                },
            },
        }

    def stats(self) -> dict:
        with self._lock:
            return self._stats_locked()

    # -- query path ----------------------------------------------------
    def handle_query(self, kind: str, params: dict) -> tuple[int, str]:
        """One query in, ``(http_status, body_json)`` out."""
        t0 = time.perf_counter()
        if kind not in QUERY_KINDS:
            return 404, _error_body(f"unknown query kind {kind!r}")
        if self._draining:
            return 503, _error_body("draining: daemon is shutting down")
        try:
            spec = QUERY_KINDS[kind][0](params)
        except (UnknownBenchmarkError, ValueError, TypeError) as error:
            return 400, _error_body(str(error))
        key = query_key(kind, spec)
        leader = False
        with self._lock:
            self._requests += 1
            self._by_kind[kind] += 1
            found, result_json = self.hot.get(key)
            if found:
                self._hot_hits += 1
                body = _response_body(
                    result_json, hot=True, coalesced=False, key=key, t0=t0
                )
                self._journal_request(kind, spec, key, t0, "hot")
                return 200, body
            flight = self._inflight.get(key)
            if flight is None:
                if len(self._inflight) >= self.config.queue_limit:
                    self._busy_rejections += 1
                    self._journal_request(kind, spec, key, t0, "busy")
                    return 429, _error_body(
                        f"busy: {len(self._inflight)} computations in "
                        "flight (queue_limit reached); retry later"
                    )
                flight = _Flight()
                self._inflight[key] = flight
                leader = True
            else:
                self._coalesced += 1
        if leader:
            self._compute(kind, spec, key, flight)
        else:
            flight.event.wait()
        if flight.error is not None:
            return flight.error_status, _error_body(flight.error)
        assert flight.result_json is not None
        status = "computed" if leader else "coalesced"
        self._journal_request(kind, spec, key, t0, status)
        return 200, _response_body(
            flight.result_json, hot=False, coalesced=not leader, key=key, t0=t0
        )

    def _compute(
        self, kind: str, spec: Any, key: str, flight: _Flight
    ) -> None:
        """Leader path: run the worker, publish the result, wake followers."""
        payload = (
            kind,
            spec,
            self.config.cache_dir,
            self.config.cache,
            self._journal is not None,
            self._peering_payload(),
            (
                (self.config.knowledge_path, self.config.warm_start)
                if self.config.knowledge_path is not None
                else None
            ),
        )
        try:
            if self._pool is not None:
                envelope, _seconds, _armed = self._pool.submit(
                    invoke_with_timeout,
                    self._worker,
                    payload,
                    False,
                    self.config.timeout,
                ).result()
            else:
                envelope, _seconds, _armed = invoke_with_timeout(
                    self._worker, payload, False, self.config.timeout
                )
        except JobTimeout as error:
            flight.error = f"timeout: {error}"
            flight.error_status = 504
            with self._lock:
                self._errors += 1
                self._timeouts += 1
        except Exception as error:  # noqa: BLE001 - served as HTTP 500
            flight.error = f"{type(error).__name__}: {error}"
            flight.error_status = 500
            with self._lock:
                self._errors += 1
        else:
            result_json = canonical_json(envelope["value"])
            flight.result_json = result_json
            if self._journal is not None:
                self._journal.write_all(
                    envelope.get("trace", []), job=query_label(kind, spec)
                )
            with self._lock:
                self.hot.put(key, result_json)
                self._computed += 1
                self._disk_hits += envelope.get("cache_hits", 0)
                self._disk_misses += envelope.get("cache_misses", 0)
                for stage, count in envelope.get(
                    "cache_stage_hits", {}
                ).items():
                    self._disk_stage_hits[stage] = (
                        self._disk_stage_hits.get(stage, 0) + count
                    )
                for stage, count in envelope.get(
                    "cache_stage_misses", {}
                ).items():
                    self._disk_stage_misses[stage] = (
                        self._disk_stage_misses.get(stage, 0) + count
                    )
                for name, count in envelope.get("peer_cache", {}).items():
                    self._peer_totals[name] = (
                        self._peer_totals.get(name, 0) + count
                    )
        finally:
            with self._idle:
                self._inflight.pop(key, None)
                if not self._inflight:
                    self._idle.notify_all()
            flight.event.set()

    # -- knowledge analytics (GET /query) ------------------------------
    def knowledge_query(self, query_string: str) -> tuple[int, str]:
        """``GET /query?kind=frontier&circuit=...`` → analytics JSON.

        Served inline on the request thread — analytics read the JSONL
        store, never the solver — and rendered with the same canonical
        encoder as query results, so identical store content yields
        byte-identical bodies.
        """
        from urllib.parse import parse_qs

        from repro.knowledge.analytics import run_query

        try:
            parsed = parse_qs(query_string, keep_blank_values=False)
        except ValueError as error:
            return 400, _error_body(f"bad query string: {error}")
        kinds = parsed.pop("kind", ["frontier"])
        params = {
            name: values if len(values) > 1 else values[0]
            for name, values in parsed.items()
        }
        try:
            result = run_query(self._knowledge, kinds[-1], params)
        except ValueError as error:
            return 400, _error_body(str(error))
        return 200, canonical_json(result)

    def _journal_request(
        self, kind: str, spec: Any, key: str, t0: float, status: str
    ) -> None:
        if self._journal is None:
            return
        self._journal.write(
            {
                "type": "request",
                "kind": kind,
                "job": query_label(kind, spec),
                "key": key[:16],
                "status": status,
                "seconds": round(time.perf_counter() - t0, 6),
            }
        )


def _error_body(message: str) -> str:
    return canonical_json({"error": message})


def _response_body(
    result_json: str, hot: bool, coalesced: bool, key: str, t0: float
) -> str:
    """``{"meta": ..., "result": ...}`` — result bytes are the cached string.

    ``meta`` is serialised independently so the ``result`` member stays
    byte-identical across hot/cold/coalesced servings of the same query.
    """
    meta = canonical_json(
        {
            "hot_cache": hot,
            "coalesced": coalesced,
            "key": key[:16],
            "elapsed_ms": round((time.perf_counter() - t0) * 1000, 3),
        }
    )
    return f'{{"meta":{meta},"result":{result_json}}}'


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class ServiceHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the shared :class:`DesignService`."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-ced/{__version__}"

    @property
    def service(self) -> DesignService:
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            health = self.service.healthz()
            status = 200 if health["status"] == "ok" else 503
            self._send(status, canonical_json(health))
        elif path == "/stats":
            self._send(200, canonical_json(self.service.stats()))
        elif path == "/query":
            query = (
                self.path.split("?", 1)[1] if "?" in self.path else ""
            )
            status, body = self.service.knowledge_query(query)
            self._send(status, body)
        elif path == "/cache/peers":
            self._send(200, canonical_json({"peers": self.service.peers()}))
        elif path.startswith("/cache/"):
            self._get_cache_entry(path)
        else:
            self._send(404, _error_body(f"no such endpoint {path!r}"))

    def _get_cache_entry(self, path: str) -> None:
        """``GET /cache/<stage>/<key>`` — raw pickled entry bytes."""
        parts = path[len("/cache/"):].split("/")
        if len(parts) != 2:
            self._send(404, _error_body(f"no such endpoint {path!r}"))
            return
        stage, key = parts
        payload = self.service.serve_cache_entry(stage, key)
        if payload is None:
            self._send(
                404, _error_body(f"no cache entry {stage}/{key[:16]}")
            )
            return
        self._send_bytes(200, payload, "application/octet-stream")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        kind = path.lstrip("/")
        if kind not in QUERY_KINDS and path != "/cache/peer":
            self._send(404, _error_body(f"no such endpoint {path!r}"))
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            params = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._send(400, _error_body(f"invalid JSON body: {error}"))
            return
        if not isinstance(params, dict):
            self._send(400, _error_body("request body must be a JSON object"))
            return
        if path == "/cache/peer":
            try:
                peers = self.service.add_peers(params.get("peers", []))
            except ValueError as error:
                self._send(400, _error_body(str(error)))
                return
            self._send(200, canonical_json({"peers": peers}))
            return
        status, body = self.service.handle_query(kind, params)
        self._send(status, body)

    def _send(self, status: int, body: str) -> None:
        self._send_bytes(status, body.encode("utf-8"), "application/json")

    def _send_bytes(
        self, status: int, payload: bytes, content_type: str
    ) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        # One request per connection: drain must never wait on an idle
        # keep-alive socket (server_close joins every handler thread).
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)
        self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


class _TcpServer(ThreadingHTTPServer):
    #: Non-daemon handler threads: ``server_close`` joins them, which is
    #: exactly the "finish in-flight work" half of graceful drain.
    daemon_threads = False

    def __init__(
        self, config, service, handler: type = ServiceHandler
    ) -> None:
        self.service = service
        self.verbose = config.verbose
        super().__init__((config.host, config.port), handler)


class _UnixServer(socketserver.ThreadingUnixStreamServer):
    daemon_threads = False
    allow_reuse_address = False

    def __init__(
        self, config, service, handler: type = ServiceHandler
    ) -> None:
        self.service = service
        self.verbose = config.verbose
        path = Path(config.socket_path)  # type: ignore[arg-type]
        path.parent.mkdir(parents=True, exist_ok=True)
        if path.is_socket():
            path.unlink()  # stale socket from a killed daemon
        super().__init__(str(path), handler)
        # BaseHTTPRequestHandler expects these TCP-ish attributes.
        self.server_name = "localhost"
        self.server_port = 0

    def get_request(self):
        request, _ = super().get_request()
        return request, ("localhost", 0)

    def server_close(self) -> None:
        super().server_close()
        try:
            os.unlink(self.server_address)  # type: ignore[arg-type]
        except OSError:
            pass


def build_server(service, handler: type = ServiceHandler):
    """The right socketserver for the config (unix socket wins over TCP).

    Shared with the router front tier (:mod:`repro.service.router`):
    any ``service`` with a ``config`` carrying ``host``/``port``/
    ``socket_path``/``verbose`` and the handler's expected surface works.
    """
    if service.config.socket_path:
        return _UnixServer(service.config, service, handler)
    return _TcpServer(service.config, service, handler)


def server_address_string(server) -> str:
    """Client-usable address: ``host:port`` or ``unix:/path``."""
    if isinstance(server, _UnixServer):
        return f"unix:{server.server_address}"
    host, port = server.server_address[:2]
    return f"{host}:{port}"


# ----------------------------------------------------------------------
# Running it
# ----------------------------------------------------------------------
class RunningService:
    """A started daemon on a background thread (tests, embedding).

    Context-manager friendly::

        with RunningService(ServiceConfig(port=0, workers=0)) as running:
            ServiceClient(running.address).design(circuit="s27")
    """

    def __init__(
        self,
        config: ServiceConfig = ServiceConfig(),
        worker: Callable[[tuple, bool], dict] = service_worker,
    ) -> None:
        self.service = DesignService(config, worker=worker)
        self.service.start()
        self.server = build_server(self.service)
        self.address = server_address_string(self.server)
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-serve",
            daemon=True,
        )
        self._stopped = False

    def __enter__(self) -> "RunningService":
        self._thread.start()
        return self

    def stop(self) -> None:
        """Full graceful drain: reject new, finish in-flight, close."""
        if self._stopped:
            return
        self._stopped = True
        self.service.begin_drain()
        self.server.shutdown()
        self._thread.join()
        self.server.server_close()  # joins in-flight handler threads
        self.service.close()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve(
    config: ServiceConfig,
    echo: Callable[[str], None] = print,
    install_signals: bool = True,
) -> int:
    """Blocking entry point behind ``repro-ced serve``.

    SIGTERM and SIGINT trigger the graceful drain; returns 0 once the
    last in-flight request has been answered and the pool is down.
    """
    service = DesignService(config)
    service.start()
    server = build_server(service)
    address = server_address_string(server)

    def _drain(signum: int, frame: object) -> None:
        echo(f"signal {signal.Signals(signum).name}: draining "
             f"({service.stats()['inflight']} in flight)")
        service.begin_drain()
        # shutdown() must not run on the serve_forever thread (deadlock).
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
    echo(
        f"repro-ced service listening on {address} "
        f"(workers={config.workers}, hot cache {config.hot_cache_size} "
        f"entries, queue limit {config.queue_limit})"
    )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()  # waits for in-flight handler threads
        service.close()
        totals = service.stats()["requests"]
        echo(
            f"drained: {totals['total']} requests served "
            f"({totals['hot_cache_hits']} hot, {totals['coalesced']} "
            f"coalesced, {totals['busy_rejections']} busy-rejected, "
            f"{totals['errors']} errors)"
        )
    return 0
