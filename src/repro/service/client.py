"""Stdlib client for the design-service daemon.

Speaks the JSON protocol of :mod:`repro.service.daemon` over TCP or a
unix domain socket.  ``repro-ced design --server ADDR`` delegates through
:class:`ServiceClient`; tests and the CI smoke lane use it directly.

Addresses::

    "127.0.0.1:8537"      TCP host:port
    ":8537"               TCP, localhost implied
    "unix:/run/ced.sock"  unix domain socket
    "/run/ced.sock"       unix socket too (any address with a slash)
"""

from __future__ import annotations

import http.client
import json
import random
import re
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable

DEFAULT_TIMEOUT = 600.0

_SCHEME_RE = re.compile(r"^([a-zA-Z][a-zA-Z0-9+.-]*)://")


class ServiceError(RuntimeError):
    """A non-200 response; carries the HTTP status and the server body."""

    def __init__(self, status: int, message: str, body: dict | None = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}

    @property
    def busy(self) -> bool:
        """True for load-shedding responses (retry later is reasonable)."""
        return self.status in (429, 503)


def parse_address(address: str) -> tuple:
    """``("tcp", host, port)`` or ``("unix", path)``.

    URL schemes are rejected outright: before this check, a pasted
    ``http://127.0.0.1:8537`` contained a ``/`` and therefore silently
    became a bogus *unix socket path*, failing much later with a
    baffling ``OSError`` on connect.  The error now says exactly what to
    send instead.
    """
    scheme = _SCHEME_RE.match(address)
    if scheme is not None:
        bare = address[scheme.end():].rstrip("/")
        raise ValueError(
            f"bad server address {address!r}: URL schemes are not "
            f"accepted; pass {bare!r} (host:port) or unix:PATH"
        )
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("empty unix socket path")
        return ("unix", path)
    if "/" in address:
        return ("unix", address)
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad server address {address!r}: want host:port or unix:PATH"
        )
    return ("tcp", host or "127.0.0.1", int(port))


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and full jitter.

    Applied to *transient* failures only — 429 (busy) and 503
    (draining) responses, plus connection-level ``OSError`` — never to
    definitive answers like 400 or 500.  The delay before attempt *n*
    (0-based) is ``uniform(0, min(max_delay, base_delay * 2**n))``:
    full jitter, so a thundering herd of identical clients spreads out
    instead of re-colliding in lockstep.
    """

    attempts: int = 5
    base_delay: float = 0.2
    max_delay: float = 2.0

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        bound = min(self.max_delay, self.base_delay * (2 ** attempt))
        return (rng or random).uniform(0, bound)


#: The client-side default: ~5 attempts over a few seconds absorbs a
#: replica's momentary 429/503 without hiding a genuinely down fleet.
DEFAULT_RETRY = RetryPolicy()


class _UnixHTTPConnection(http.client.HTTPConnection):
    def __init__(self, path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServiceClient:
    """One daemon address; a fresh connection per request (daemon closes
    connections after each response, so there is nothing to pool)."""

    def __init__(self, address: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.address = address
        self.timeout = timeout
        self._parsed = parse_address(address)

    def _connection(self) -> http.client.HTTPConnection:
        if self._parsed[0] == "unix":
            return _UnixHTTPConnection(self._parsed[1], self.timeout)
        _, host, port = self._parsed
        return http.client.HTTPConnection(host, port, timeout=self.timeout)

    # -- raw -----------------------------------------------------------
    def request_raw(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, bytes]:
        """(status, body bytes) — the transport truth, for byte-level tests."""
        connection = self._connection()
        try:
            body = None
            headers = {"Accept": "application/json"}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        status, raw = self.request_raw(method, path, payload)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except ValueError:
            parsed = {"error": f"non-JSON response: {raw[:200]!r}"}
        return status, parsed

    # -- typed ---------------------------------------------------------
    def call(self, kind: str, **params: Any) -> dict:
        """POST one query; returns the ``{"meta", "result"}`` body."""
        status, body = self.request("POST", f"/{kind}", params)
        if status != 200:
            raise ServiceError(
                status, body.get("error", f"HTTP {status}"), body
            )
        return body

    def call_with_retry(
        self,
        kind: str,
        params: dict,
        policy: RetryPolicy = DEFAULT_RETRY,
        on_retry: Callable[[int, float, Exception], None] | None = None,
    ) -> dict:
        """:meth:`call`, absorbing transient busy/unreachable failures.

        Retries on 429/503 (:attr:`ServiceError.busy`) and ``OSError``
        with the policy's jittered backoff; any other failure — and a
        transient one that outlives the attempt budget — propagates.
        ``on_retry(attempt, delay, error)`` fires before each sleep
        (progress lines, counters).
        """
        last_error: Exception | None = None
        for attempt in range(policy.attempts):
            try:
                return self.call(kind, **params)
            except ServiceError as error:
                if not error.busy:
                    raise
                last_error = error
            except OSError as error:
                last_error = error
            if attempt + 1 < policy.attempts:
                delay = policy.delay(attempt)
                if on_retry is not None:
                    on_retry(attempt, delay, last_error)
                time.sleep(delay)
        assert last_error is not None
        raise last_error

    def design(self, **params: Any) -> dict:
        return self.call("design", **params)

    def sweep(self, **params: Any) -> dict:
        return self.call("sweep", **params)

    def table1(self, **params: Any) -> dict:
        return self.call("table1", **params)

    def verify(self, **params: Any) -> dict:
        return self.call("verify", **params)

    def healthz(self) -> dict:
        status, body = self.request("GET", "/healthz")
        if status not in (200, 503):
            raise ServiceError(status, body.get("error", f"HTTP {status}"))
        return body

    def stats(self) -> dict:
        status, body = self.request("GET", "/stats")
        if status != 200:
            raise ServiceError(status, body.get("error", f"HTTP {status}"))
        return body

    def ping(self, attempts: int = 50, delay: float = 0.1) -> bool:
        """Poll ``/healthz`` until the daemon answers *200 ok*.

        Two deliberate asymmetries, both regression-tested:

        * a **503 draining** healthz keeps polling but never returns
          True — :meth:`healthz` accepts the 503 body (callers want the
          ``status: draining`` payload), but "up" here means *accepting
          work*, and a draining daemon is refusing it;
        * a definitive **4xx** means something answered HTTP and it is
          not a repro-ced daemon (or not its API) — failing the full
          ``attempts × delay`` budget against a wrong port helps nobody,
          so that raises immediately instead of burning the budget.
        """
        for _ in range(attempts):
            try:
                status, body = self.request("GET", "/healthz")
            except OSError:
                time.sleep(delay)
                continue
            if status == 200:
                return True
            if 400 <= status < 500:
                raise ServiceError(
                    status,
                    f"{self.address} answers HTTP but not /healthz "
                    f"(status {status}): not a repro-ced daemon?",
                    body,
                )
            time.sleep(delay)  # 5xx (incl. 503 draining): keep polling
        return False
