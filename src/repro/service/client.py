"""Stdlib client for the design-service daemon.

Speaks the JSON protocol of :mod:`repro.service.daemon` over TCP or a
unix domain socket.  ``repro-ced design --server ADDR`` delegates through
:class:`ServiceClient`; tests and the CI smoke lane use it directly.

Addresses::

    "127.0.0.1:8537"      TCP host:port
    ":8537"               TCP, localhost implied
    "unix:/run/ced.sock"  unix domain socket
    "/run/ced.sock"       unix socket too (any address with a slash)
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Any

DEFAULT_TIMEOUT = 600.0


class ServiceError(RuntimeError):
    """A non-200 response; carries the HTTP status and the server body."""

    def __init__(self, status: int, message: str, body: dict | None = None):
        super().__init__(message)
        self.status = status
        self.body = body or {}

    @property
    def busy(self) -> bool:
        """True for load-shedding responses (retry later is reasonable)."""
        return self.status in (429, 503)


def parse_address(address: str) -> tuple:
    """``("tcp", host, port)`` or ``("unix", path)``."""
    if address.startswith("unix:"):
        path = address[len("unix:"):]
        if not path:
            raise ValueError("empty unix socket path")
        return ("unix", path)
    if "/" in address:
        return ("unix", address)
    host, sep, port = address.rpartition(":")
    if not sep or not port.isdigit():
        raise ValueError(
            f"bad server address {address!r}: want host:port or unix:PATH"
        )
    return ("tcp", host or "127.0.0.1", int(port))


class _UnixHTTPConnection(http.client.HTTPConnection):
    def __init__(self, path: str, timeout: float) -> None:
        super().__init__("localhost", timeout=timeout)
        self._unix_path = path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.settimeout(self.timeout)
        sock.connect(self._unix_path)
        self.sock = sock


class ServiceClient:
    """One daemon address; a fresh connection per request (daemon closes
    connections after each response, so there is nothing to pool)."""

    def __init__(self, address: str, timeout: float = DEFAULT_TIMEOUT) -> None:
        self.address = address
        self.timeout = timeout
        self._parsed = parse_address(address)

    def _connection(self) -> http.client.HTTPConnection:
        if self._parsed[0] == "unix":
            return _UnixHTTPConnection(self._parsed[1], self.timeout)
        _, host, port = self._parsed
        return http.client.HTTPConnection(host, port, timeout=self.timeout)

    # -- raw -----------------------------------------------------------
    def request_raw(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, bytes]:
        """(status, body bytes) — the transport truth, for byte-level tests."""
        connection = self._connection()
        try:
            body = None
            headers = {"Accept": "application/json"}
            if payload is not None:
                body = json.dumps(payload).encode("utf-8")
                headers["Content-Type"] = "application/json"
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            return response.status, response.read()
        finally:
            connection.close()

    def request(
        self, method: str, path: str, payload: dict | None = None
    ) -> tuple[int, dict]:
        status, raw = self.request_raw(method, path, payload)
        try:
            parsed = json.loads(raw.decode("utf-8"))
        except ValueError:
            parsed = {"error": f"non-JSON response: {raw[:200]!r}"}
        return status, parsed

    # -- typed ---------------------------------------------------------
    def call(self, kind: str, **params: Any) -> dict:
        """POST one query; returns the ``{"meta", "result"}`` body."""
        status, body = self.request("POST", f"/{kind}", params)
        if status != 200:
            raise ServiceError(
                status, body.get("error", f"HTTP {status}"), body
            )
        return body

    def design(self, **params: Any) -> dict:
        return self.call("design", **params)

    def sweep(self, **params: Any) -> dict:
        return self.call("sweep", **params)

    def table1(self, **params: Any) -> dict:
        return self.call("table1", **params)

    def verify(self, **params: Any) -> dict:
        return self.call("verify", **params)

    def healthz(self) -> dict:
        status, body = self.request("GET", "/healthz")
        if status not in (200, 503):
            raise ServiceError(status, body.get("error", f"HTTP {status}"))
        return body

    def stats(self) -> dict:
        status, body = self.request("GET", "/stats")
        if status != 200:
            raise ServiceError(status, body.get("error", f"HTTP {status}"))
        return body

    def ping(self, attempts: int = 50, delay: float = 0.1) -> bool:
        """Poll ``/healthz`` until the daemon answers (daemon startup)."""
        for _ in range(attempts):
            try:
                self.healthz()
                return True
            except (OSError, ServiceError):
                time.sleep(delay)
        return False
