"""Service queries: request normalisation, content keys, worker function.

A *query* is one HTTP request body turned into a fully pinned-down,
picklable spec.  Normalisation fills defaults (matching the equivalent
CLI command exactly, so a delegated ``repro-ced design --server`` returns
the same numbers as a local run), validates every field, and rejects
unknown ones — a typo must be a 400, not a silently different design.

Determinism contract: every random choice downstream derives from the
*request* (the spec carries the seed; the solver uses
:func:`repro.util.rng.rng_for` on it), never from daemon state, worker
identity or arrival order.  The spec is also the content key
(:func:`query_key` fingerprints it with the shared cache salt), so two
identical requests — concurrent or years apart — map to one computation
and byte-identical canonical JSON.

:func:`service_worker` is the module-level function the daemon's process
pool executes; it mirrors :func:`repro.runtime.campaign.campaign_worker`
(shared per-process disk cache, metrics, optional tracing) but returns
service-shaped results.
"""

from __future__ import annotations

import json
from contextlib import nullcontext
from dataclasses import asdict
from typing import Any, Callable

from repro.core.search import SolveConfig
from repro.knowledge.store import KnowledgeContext, open_store, use_knowledge
from repro.runtime.cache import fingerprint
from repro.runtime.campaign import (
    DesignJobSpec,
    _brief,
    _run_sweep,
    _run_table1_row,
    _worker_cache,
)
from repro.runtime.metrics import MetricsRecorder
from repro.runtime.trace import Tracer, _jsonable, use_tracer

SEMANTICS = ("checker", "trajectory")
ENCODINGS = ("binary", "gray", "onehot", "weighted")


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, minimal separators, no NaN.

    The daemon stores and serves query results as these strings, so
    "byte-identical responses" is a property of the encoder, not a hope
    about dict ordering.
    """
    return json.dumps(
        _jsonable(value), sort_keys=True, separators=(",", ":"),
        allow_nan=False,
    )


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------
def _take(params: dict, allowed: dict[str, Any]) -> dict:
    """Fill defaults and reject unknown fields (a typo must be a 400)."""
    if not isinstance(params, dict):
        raise ValueError("request body must be a JSON object")
    unknown = sorted(set(params) - set(allowed))
    if unknown:
        raise ValueError(
            f"unknown field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(sorted(allowed))}"
        )
    return {name: params.get(name, default) for name, default in allowed.items()}


def _circuit(value: Any, seed: int) -> str:
    from repro.fsm.benchmarks import load_benchmark

    if not isinstance(value, str) or not value:
        raise ValueError("'circuit' (benchmark name) is required")
    load_benchmark(value, seed=seed)  # raises UnknownBenchmarkError
    return value


def _int_field(value: Any, name: str, minimum: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise ValueError(f"{name!r} must be an integer")
    if value < minimum:
        raise ValueError(f"{name!r} must be >= {minimum}")
    return value


def _choice(value: Any, name: str, choices: tuple[str, ...]) -> str:
    if value not in choices:
        raise ValueError(f"{name!r} must be one of {', '.join(choices)}")
    return value


def _max_faults(value: Any) -> int | None:
    if value is None:
        return None
    return _int_field(value, "max_faults", 1)


def normalize_design(params: dict) -> DesignJobSpec:
    """Defaults mirror ``repro-ced design`` (checker semantics, seed 2004)."""
    fields = _take(params, {
        "circuit": None, "latency": 1, "semantics": "checker",
        "encoding": "binary", "max_faults": 800, "multilevel": False,
        "seed": 2004,
    })
    seed = _int_field(fields["seed"], "seed", 0)
    return DesignJobSpec(
        circuit=_circuit(fields["circuit"], seed),
        latencies=(_int_field(fields["latency"], "latency", 1),),
        semantics=_choice(fields["semantics"], "semantics", SEMANTICS),
        encoding=_choice(fields["encoding"], "encoding", ENCODINGS),
        max_faults=_max_faults(fields["max_faults"]),
        multilevel=bool(fields["multilevel"]),
        seed=seed,
        solve=SolveConfig(seed=seed),
    )


def normalize_sweep(params: dict) -> tuple:
    """Defaults mirror ``repro-ced sweep`` (trajectory, max_faults 400)."""
    fields = _take(params, {
        "circuit": None, "max_latency": 4, "semantics": "trajectory",
        "max_faults": 400, "seed": 2004,
    })
    seed = _int_field(fields["seed"], "seed", 0)
    return (
        _circuit(fields["circuit"], seed),
        _int_field(fields["max_latency"], "max_latency", 1),
        _choice(fields["semantics"], "semantics", SEMANTICS),
        _max_faults(fields["max_faults"]),
        SolveConfig(seed=seed),
        seed,
    )


def normalize_table1(params: dict) -> tuple:
    """One circuit row, defaults mirroring ``repro-ced table1``."""
    from repro.experiments.table1 import Table1Config

    fields = _take(params, {
        "circuit": None, "latencies": [1, 2, 3], "semantics": "trajectory",
        "encoding": "binary", "max_faults": 800, "multilevel": True,
        "seed": 2004,
    })
    seed = _int_field(fields["seed"], "seed", 0)
    latencies = fields["latencies"]
    if not isinstance(latencies, (list, tuple)) or not latencies:
        raise ValueError("'latencies' must be a non-empty list of integers")
    config = Table1Config(
        latencies=tuple(
            _int_field(p, "latencies", 1) for p in latencies
        ),
        semantics=_choice(fields["semantics"], "semantics", SEMANTICS),
        encoding=_choice(fields["encoding"], "encoding", ENCODINGS),
        max_faults=_max_faults(fields["max_faults"]),
        seed=seed,
        multilevel=bool(fields["multilevel"]),
        solve=SolveConfig(seed=seed),
    )
    return (_circuit(fields["circuit"], seed), config)


def normalize_verify(params: dict) -> tuple:
    """One exact verification; defaults mirror ``repro-ced verify --exhaustive``."""
    from repro.verification.exhaustive import (
        DEFAULT_STATE_BUDGET,
        ExhaustiveConfig,
    )

    fields = _take(params, {
        "circuit": None, "latency": 1, "semantics": "checker",
        "encoding": "binary", "max_faults": 800, "multilevel": False,
        "seed": 2004, "state_budget": DEFAULT_STATE_BUDGET,
    })
    seed = _int_field(fields["seed"], "seed", 0)
    config = ExhaustiveConfig(
        latency=_int_field(fields["latency"], "latency", 1),
        semantics=_choice(fields["semantics"], "semantics", SEMANTICS),
        encoding=_choice(fields["encoding"], "encoding", ENCODINGS),
        max_faults=_max_faults(fields["max_faults"]),
        multilevel=bool(fields["multilevel"]),
        seed=seed,
        state_budget=_int_field(fields["state_budget"], "state_budget", 1),
    )
    return (_circuit(fields["circuit"], seed), config)


def query_key(kind: str, spec: Any) -> str:
    """Content key of a normalised query (shares the disk cache's salt)."""
    return fingerprint("service", kind, spec)


def query_label(kind: str, spec: Any) -> str:
    """Short human label (journal stamping, log lines)."""
    circuit = getattr(spec, "circuit", None)
    if circuit is None and isinstance(spec, tuple):
        circuit = spec[0]
    return f"{kind}:{circuit}"


# ----------------------------------------------------------------------
# Compute (runs in the daemon's pool workers — or inline)
# ----------------------------------------------------------------------
def _run_design_query(spec: DesignJobSpec, cache, recorder, degraded):
    from repro.flow import design_ced_sweep
    from repro.fsm.benchmarks import load_benchmark

    fsm = load_benchmark(spec.circuit, seed=spec.seed)
    designs = design_ced_sweep(
        fsm,
        latencies=list(spec.latencies),
        semantics=spec.semantics,
        encoding=spec.encoding,
        max_faults=spec.max_faults,
        solve_config=spec.solve,
        multilevel=spec.multilevel,
        cache=cache,
        recorder=recorder,
        degraded=degraded,
    )
    design = designs[spec.latencies[0]]
    hardware = design.hardware
    return {
        "circuit": spec.circuit,
        "latency": design.latency,
        "semantics": spec.semantics,
        "encoding": spec.encoding,
        "max_faults": spec.max_faults,
        "seed": spec.seed,
        "q": design.num_parity_bits,
        "betas": [int(beta) for beta in design.solve_result.betas],
        "source": design.solve_result.incumbent_source,
        "gates": design.gates,
        "cost": design.cost,
        "original": {
            "gates": design.synthesis.stats.gates,
            "cost": design.synthesis.stats.cost,
        },
        "breakdown": {
            "parity_trees": {
                "gates": hardware.parity_stats.gates,
                "cost": hardware.parity_stats.cost,
            },
            "predictor": {
                "gates": hardware.predictor_stats.gates,
                "cost": hardware.predictor_stats.cost,
            },
            "comparator": {
                "gates": hardware.comparator_stats.gates,
                "cost": hardware.comparator_stats.cost,
            },
        },
    }


def _run_sweep_query(spec: tuple, cache, recorder, degraded):
    curve = _run_sweep(spec, cache, recorder, degraded)
    circuit, max_latency, semantics, max_faults, _solve, seed = spec
    return {
        "circuit": circuit,
        "max_latency": max_latency,
        "semantics": semantics,
        "max_faults": max_faults,
        "seed": seed,
        "points": [asdict(point) for point in curve.points],
    }


def _run_table1_query(spec: tuple, cache, recorder, degraded):
    return _brief(_run_table1_row(spec, cache, recorder, degraded))


def _run_verify_query(spec: tuple, cache, recorder, degraded):
    from repro.verification.exhaustive import verify_exhaustive

    circuit, config = spec
    return verify_exhaustive(
        circuit, config, cache=cache, recorder=recorder, degraded=degraded
    )


#: kind -> (normalize, runner); the daemon routes ``POST /<kind>`` here.
QUERY_KINDS: dict[str, tuple[Callable, Callable]] = {
    "design": (normalize_design, _run_design_query),
    "sweep": (normalize_sweep, _run_sweep_query),
    "table1": (normalize_table1, _run_table1_query),
    "verify": (normalize_verify, _run_verify_query),
}


def service_worker(payload: tuple, degraded: bool) -> dict:
    """Pool entry point: one query in, a result envelope out.

    Module-level so it pickles across the daemon's process pool; reuses
    the campaign layer's per-process disk cache so every worker shares
    one :class:`~repro.runtime.cache.ArtifactCache` across requests.
    The optional sixth payload element carries the daemon's current
    peer-cache wiring (see :mod:`repro.service.peering`): with peers
    configured, the disk cache is wrapped in a read-through
    :class:`~repro.service.peering.PeerCache` so a local artifact miss
    asks a warm replica before re-solving.  The optional seventh element
    ``(knowledge_path, warm_start)`` installs a design knowledge base
    (:mod:`repro.knowledge`) around the query.
    """
    kind, spec, cache_dir, cache_enabled, trace = payload[:5]
    peering = payload[5] if len(payload) > 5 else None
    knowledge_desc = payload[6] if len(payload) > 6 else None
    cache = _worker_cache(cache_dir, cache_enabled)
    peer_before = None
    if peering and peering.get("peers"):
        from repro.service.peering import peer_cache_for

        cache = peer_cache_for(
            cache,
            tuple(peering["peers"]),
            timeout=peering.get("timeout", 5.0),
            negative_ttl=peering.get("negative_ttl", 30.0),
        )
        if hasattr(cache, "peer_stats"):
            peer_before = cache.peer_stats()
    recorder = MetricsRecorder()
    hits_before, misses_before = cache.counters()
    stage_hits_before, stage_misses_before = cache.stage_counters()
    tracer = Tracer() if trace else None
    context = use_tracer(tracer) if tracer is not None else nullcontext()
    knowledge = (
        KnowledgeContext(
            store=open_store(knowledge_desc[0]),
            warm_start=bool(knowledge_desc[1]),
        )
        if knowledge_desc is not None
        else None
    )
    with context, use_knowledge(knowledge):
        value = QUERY_KINDS[kind][1](spec, cache, recorder, degraded)
    hits_after, misses_after = cache.counters()
    stage_hits_after, stage_misses_after = cache.stage_counters()
    envelope = {
        "value": value,
        "stages": recorder.as_dicts(),
        "cache_hits": hits_after - hits_before,
        "cache_misses": misses_after - misses_before,
        "cache_stage_hits": _counter_delta(stage_hits_before, stage_hits_after),
        "cache_stage_misses": _counter_delta(
            stage_misses_before, stage_misses_after
        ),
        "trace": tracer.records if tracer is not None else [],
    }
    if peer_before is not None:
        peer_after = cache.peer_stats()
        envelope["peer_cache"] = _counter_delta(
            peer_before.as_dict(), peer_after.as_dict()
        )
    return envelope


def _counter_delta(
    before: dict[str, int], after: dict[str, int]
) -> dict[str, int]:
    delta = {
        stage: count - before.get(stage, 0) for stage, count in after.items()
    }
    return {stage: count for stage, count in delta.items() if count}


def warmup_worker(payload: object, degraded: bool) -> str:
    """Pre-import the heavy flow modules so the first request pays nothing."""
    import repro.flow  # noqa: F401
    import repro.logic.synthesis  # noqa: F401

    from repro import __version__

    return __version__
