"""Peered artifact cache: read-through fetches from warm replica daemons.

A sharded deployment runs several ``repro-ced serve`` replicas, each with
its own disk :class:`~repro.runtime.cache.ArtifactCache`.  Without
peering, a request routed to a cold replica re-solves artifacts a warm
peer already holds.  This module closes that gap with a tiny protocol
over the existing service transport:

* ``GET /cache/<stage>/<key>`` — a daemon serves the raw pickled bytes
  of one cache entry (404 when absent); coordinates are validated on
  both ends (:func:`repro.runtime.cache.valid_entry_coords`).
* ``POST /cache/peer`` — register peer addresses on a running daemon
  (``{"peers": ["host:port", ...]}``); ``repro-ced serve --peer`` seeds
  the same set at startup.

:class:`PeerCache` layers the client side under the local cache: a local
miss consults each peer in order, stores a hit's bytes locally (so the
artifact is served from disk forever after — read-through), and
remembers misses for ``negative_ttl`` seconds so a fleet-wide cold key
costs each replica at most one round of peer lookups per cooldown
window (negative-lookup cooldown).

Correctness is inherited, not hoped for: cache entries are
content-addressed pickles of pure-function values, and the fingerprint
includes the version salt, so a fetched entry is byte-identical to what
the local replica would have computed.  A corrupt or truncated transfer
deserializes like any corrupt entry — a miss, quietly replaced.
"""

from __future__ import annotations

import pickle
import threading
import time
from dataclasses import asdict, dataclass

from repro.runtime.cache import ArtifactCache, valid_entry_coords
from repro.runtime.trace import current_tracer

#: Default seconds a (stage, key) peer miss is remembered before peers
#: are asked again.
DEFAULT_NEGATIVE_TTL = 30.0
#: Default per-peer-request timeout.  Peer fetches sit on the latency
#: path of a cold request, so this is deliberately much shorter than the
#: compute timeout: a slow peer must degrade to "just re-solve locally".
DEFAULT_PEER_TIMEOUT = 5.0

#: Bound on remembered negative lookups (oldest pruned past this).
_NEGATIVE_CAP = 4096


@dataclass
class PeerStats:
    """Counters of one :class:`PeerCache` (daemon ``/stats`` aggregates
    these across pool workers via the result envelope)."""

    hits: int = 0
    misses: int = 0
    cooldown_skips: int = 0
    errors: int = 0
    fetched_bytes: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


class PeerCache:
    """Read-through peer layer under a local :class:`ArtifactCache`.

    Implements the same ``get``/``put``/``stats``/``counters`` surface
    the flow code expects of a cache, delegating everything local to
    ``base`` — a peer fetch that lands is *written into the base cache*
    and only then unpickled, so the local disk ends up holding the
    byte-identical entry and the base's own counters keep meaning "disk
    truth" (the fetch round-trip shows up in :meth:`peer_stats` instead).
    """

    def __init__(
        self,
        base: ArtifactCache,
        peers: tuple[str, ...],
        timeout: float = DEFAULT_PEER_TIMEOUT,
        negative_ttl: float = DEFAULT_NEGATIVE_TTL,
    ) -> None:
        self.base = base
        self.peers = tuple(peers)
        self.timeout = timeout
        self.negative_ttl = negative_ttl
        self._lock = threading.Lock()
        self._negative: dict[tuple[str, str], float] = {}
        self._hits = 0
        self._misses = 0
        self._cooldown_skips = 0
        self._errors = 0
        self._fetched_bytes = 0

    # -- cache surface (what the flow sees) ----------------------------
    def get(self, stage: str, key: str) -> tuple[bool, object]:
        found, value = self.base.get(stage, key)
        if found or not self.peers:
            return found, value
        return self._fetch_from_peers(stage, key)

    def put(self, stage: str, key: str, value: object) -> None:
        self.base.put(stage, key, value)

    def stats(self):
        return self.base.stats()

    def counters(self) -> tuple[int, int]:
        return self.base.counters()

    def stage_counters(self) -> tuple[dict[str, int], dict[str, int]]:
        return self.base.stage_counters()

    def peer_stats(self) -> PeerStats:
        with self._lock:
            return PeerStats(
                hits=self._hits,
                misses=self._misses,
                cooldown_skips=self._cooldown_skips,
                errors=self._errors,
                fetched_bytes=self._fetched_bytes,
            )

    # -- peer side -----------------------------------------------------
    def _cooling(self, stage: str, key: str) -> bool:
        now = time.monotonic()
        with self._lock:
            expiry = self._negative.get((stage, key))
            if expiry is not None and expiry > now:
                self._cooldown_skips += 1
                return True
            if expiry is not None:
                del self._negative[(stage, key)]
            return False

    def _remember_miss(self, stage: str, key: str) -> None:
        with self._lock:
            self._misses += 1
            if self.negative_ttl <= 0:
                return
            self._negative[(stage, key)] = (
                time.monotonic() + self.negative_ttl
            )
            while len(self._negative) > _NEGATIVE_CAP:
                self._negative.pop(next(iter(self._negative)))

    def _fetch_from_peers(self, stage: str, key: str) -> tuple[bool, object]:
        if not valid_entry_coords(stage, key):
            return False, None
        if self._cooling(stage, key):
            return False, None
        tracer = current_tracer()
        for peer in self.peers:
            payload = self._fetch_one(peer, stage, key)
            if payload is None:
                continue
            try:
                value = pickle.loads(payload)
            except Exception:
                with self._lock:
                    self._errors += 1
                continue
            self.base.write_entry_bytes(stage, key, payload)
            with self._lock:
                self._hits += 1
                self._fetched_bytes += len(payload)
            if tracer.enabled:
                tracer.event(
                    "cache.peer", stage=stage, peer=peer, hit=True,
                    bytes=len(payload),
                )
            return True, value
        self._remember_miss(stage, key)
        if tracer.enabled:
            tracer.event("cache.peer", stage=stage, peer=None, hit=False)
        return False, None

    def _fetch_one(self, peer: str, stage: str, key: str) -> bytes | None:
        # Imported here (not at module top) to keep the runtime layer
        # free of a hard dependency on the service client.
        from repro.service.client import ServiceClient

        try:
            status, payload = ServiceClient(
                peer, timeout=self.timeout
            ).request_raw("GET", f"/cache/{stage}/{key}")
        except OSError:
            with self._lock:
                self._errors += 1
            return None
        if status != 200:
            return None
        return payload


# ----------------------------------------------------------------------
# Worker-side construction
# ----------------------------------------------------------------------
#: Process-level PeerCache registry: one instance per (cache identity,
#: peer set), so the negative-lookup cooldown and counters survive across
#: requests served by the same pool worker.
_PEER_CACHES: dict[tuple[int, tuple[str, ...], float, float], PeerCache] = {}


def peer_cache_for(
    base,
    peers: tuple[str, ...],
    timeout: float = DEFAULT_PEER_TIMEOUT,
    negative_ttl: float = DEFAULT_NEGATIVE_TTL,
):
    """The worker's cache: ``base`` wrapped in a memoized PeerCache.

    Falls through to ``base`` unchanged when peering is off (no peers)
    or the base is not a disk cache (``--no-cache``: there is nowhere to
    store a fetched entry, and a diskless replica should not lean on the
    fleet for every stage of every request).
    """
    peers = tuple(peers)
    if not peers or not isinstance(base, ArtifactCache):
        return base
    memo_key = (id(base), peers, timeout, negative_ttl)
    cache = _PEER_CACHES.get(memo_key)
    if cache is None:
        cache = PeerCache(
            base, peers, timeout=timeout, negative_ttl=negative_ttl
        )
        _PEER_CACHES[memo_key] = cache
    return cache
