"""Front-tier router: fingerprint-sharded dispatch over replica daemons.

``repro-ced route --replica ADDR --replica ADDR ...`` runs a thin,
stateless-by-design front tier over a fleet of ``repro-ced serve``
replicas.  It owns no compute and no cache — only the *placement* of
requests — which keeps it safe to restart at any time:

* **Rendezvous hashing.**  Each request is normalised exactly like a
  replica would (invalid requests die here with a 400, never touching
  the fleet) and fingerprinted into the shared content key.  Replicas
  are ranked by ``sha256(key | replica)`` — highest score wins — so a
  given fingerprint consistently lands on the same replica (hot-cache
  affinity) and losing a replica only remaps that replica's keys.
* **Health-checked failover.**  A background loop polls every replica's
  ``/healthz``; draining (503) and unreachable replicas drop out of the
  ranking.  A dispatch that hits a dead socket marks the replica down
  immediately and fails over to the next-ranked one.
* **Bounded retry with jittered backoff.**  429/503 answers are
  absorbed by the router's :class:`~repro.service.client.RetryPolicy`
  (full-jitter exponential backoff, rotating through the ranking).
  Only when every attempt stays saturated does the client see a 503.
* **Hedged re-dispatch.**  Once a request has been in flight past a
  p95-derived deadline (per query kind, over a sliding window), the
  router dispatches the same request to the second-ranked replica and
  serves whichever answers first.  Safe by construction: responses are
  byte-identical across replicas, so first-response-wins can never mix
  bytes — the loser is simply discarded.

Replica responses stream through byte-for-byte (the router never
re-serialises a body), so every byte-identity guarantee of a single
daemon extends verbatim across the fleet.
"""

from __future__ import annotations

import hashlib
import json
import math
import queue
import signal
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler
from pathlib import Path
from typing import Any, Callable

from repro import __version__
from repro.fsm.benchmarks import UnknownBenchmarkError
from repro.runtime.trace import JournalWriter
from repro.service.client import RetryPolicy, ServiceClient, parse_address
from repro.service.daemon import build_server, server_address_string
from repro.service.queries import QUERY_KINDS, canonical_json, query_key

#: Sliding window of per-kind latency samples backing the hedge deadline.
_SAMPLE_WINDOW = 256


@dataclass(frozen=True)
class RouterConfig:
    """Router knobs (``repro-ced route`` flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 8600
    socket_path: str | None = None
    #: Replica daemon addresses (at least one).
    replicas: tuple[str, ...] = ()
    #: Transient-failure policy per request: total dispatch attempts and
    #: the jittered-backoff envelope between busy answers.
    retry: RetryPolicy = RetryPolicy(attempts=6, base_delay=0.1, max_delay=2.0)
    #: Seconds between background ``/healthz`` probes.
    health_interval: float = 2.0
    health_timeout: float = 2.0
    #: Hedged re-dispatch: after ``max(hedge_floor, p95 * hedge_multiplier)``
    #: seconds in flight (p95 over the kind's recent latencies, used once
    #: ``hedge_min_samples`` are recorded), send the request to a second
    #: replica and serve the first response.  ``hedge=False`` disables it.
    hedge: bool = True
    hedge_multiplier: float = 3.0
    hedge_min_samples: int = 10
    hedge_floor: float = 0.05
    #: Per-leg forwarding timeout (seconds).
    timeout: float = 600.0
    journal_path: str | None = None
    verbose: bool = False


class _Replica:
    """One backend daemon: address, health view and counters.

    Mutable fields are guarded by the router's lock; the client is
    thread-safe (a fresh connection per request, nothing shared).
    """

    __slots__ = (
        "address", "client", "healthy", "draining",
        "dispatched", "ok", "busy", "connect_failures", "hedge_wins",
    )

    def __init__(self, address: str, timeout: float) -> None:
        parse_address(address)  # fail fast on a bad --replica flag
        self.address = address
        self.client = ServiceClient(address, timeout=timeout)
        # Optimistic until the first probe: requests may arrive before
        # the health loop's first pass, and a wrong guess self-corrects
        # via dispatch failover.
        self.healthy = True
        self.draining = False
        self.dispatched = 0
        self.ok = 0
        self.busy = 0
        self.connect_failures = 0
        self.hedge_wins = 0

    @property
    def eligible(self) -> bool:
        return self.healthy and not self.draining


class _Leg:
    """One dispatched copy of a request (primary or hedge)."""

    __slots__ = ("replica", "hedged", "status", "raw", "error", "seconds")

    def __init__(self, replica: _Replica, hedged: bool) -> None:
        self.replica = replica
        self.hedged = hedged
        self.status: int | None = None
        self.raw: bytes | None = None
        self.error: Exception | None = None
        self.seconds = 0.0


class RouterService:
    """Routing logic and shared state (HTTP layer aside); thread-safe."""

    def __init__(self, config: RouterConfig) -> None:
        if not config.replicas:
            raise ValueError("router needs at least one --replica address")
        self.config = config
        self._replicas = [
            _Replica(address, config.timeout) for address in config.replicas
        ]
        self._lock = threading.Lock()
        self._journal: JournalWriter | None = None
        self._journal_origin = time.perf_counter()
        self._started = time.monotonic()
        self._stop = threading.Event()
        self._health_thread: threading.Thread | None = None
        # Counters (guarded by _lock).
        self._requests = 0
        self._by_kind = {kind: 0 for kind in QUERY_KINDS}
        self._routed = 0
        self._rejected = 0
        self._retries = 0
        self._failovers = 0
        self._hedges = 0
        self._hedge_wins = 0
        self._exhausted = 0
        self._samples: dict[str, list[float]] = {k: [] for k in QUERY_KINDS}

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        if self.config.journal_path:
            self._journal = JournalWriter(
                Path(self.config.journal_path), name="route"
            )
        self._health_thread = threading.Thread(
            target=self._health_loop, name="route-health", daemon=True
        )
        self._health_thread.start()

    def close(self) -> None:
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(timeout=10)
            self._health_thread = None
        if self._journal is not None:
            self._journal.write({"type": "summary", **self.stats()})
            self._journal.close()
            self._journal = None

    # -- health --------------------------------------------------------
    def _health_loop(self) -> None:
        self.probe_replicas()  # initial pass, then periodic
        while not self._stop.wait(self.config.health_interval):
            self.probe_replicas()

    def probe_replicas(self) -> None:
        """One ``/healthz`` round over every replica (health loop body;
        callable directly from tests for determinism)."""
        for replica in self._replicas:
            probe = ServiceClient(
                replica.address, timeout=self.config.health_timeout
            )
            try:
                status, _body = probe.request("GET", "/healthz")
            except OSError:
                healthy, draining = False, False
            else:
                healthy = status == 200
                draining = status == 503
            with self._lock:
                replica.healthy = healthy
                replica.draining = draining

    # -- placement -----------------------------------------------------
    def _rank(self, key: str) -> list[_Replica]:
        """Replicas by rendezvous score for ``key``, best first."""
        def score(replica: _Replica) -> bytes:
            return hashlib.sha256(
                f"{key}|{replica.address}".encode()
            ).digest()

        return sorted(self._replicas, key=score, reverse=True)

    def _hedge_deadline(self, kind: str) -> float | None:
        if not self.config.hedge or len(self._replicas) < 2:
            return None
        with self._lock:
            samples = sorted(self._samples[kind])
        if len(samples) < self.config.hedge_min_samples or not samples:
            # min_samples=0 means "hedge from the first request" (tests,
            # aggressive deployments): fall back to the floor deadline.
            return self.config.hedge_floor if (
                self.config.hedge_min_samples <= 0
            ) else None
        p95 = _quantile(samples, 0.95)
        return max(self.config.hedge_floor,
                   p95 * self.config.hedge_multiplier)

    def _record_sample(self, kind: str, seconds: float) -> None:
        with self._lock:
            samples = self._samples[kind]
            samples.append(seconds)
            if len(samples) > _SAMPLE_WINDOW:
                del samples[: len(samples) - _SAMPLE_WINDOW]

    # -- dispatch ------------------------------------------------------
    def handle_query(self, kind: str, params: dict) -> tuple[int, bytes]:
        """One request in, ``(status, body_bytes)`` out (pass-through)."""
        if kind not in QUERY_KINDS:
            return 404, _error_bytes(f"unknown query kind {kind!r}")
        try:
            spec = QUERY_KINDS[kind][0](params)
        except (UnknownBenchmarkError, ValueError, TypeError) as error:
            with self._lock:
                self._requests += 1
                self._by_kind[kind] += 1
                self._rejected += 1
            return 400, _error_bytes(str(error))
        key = query_key(kind, spec)
        with self._lock:
            self._requests += 1
            self._by_kind[kind] += 1
        return self._dispatch(kind, params, key)

    def _dispatch(self, kind: str, params: dict, key: str) -> tuple[int, bytes]:
        ranking = self._rank(key)
        policy = self.config.retry
        last: tuple[int, bytes] | None = None
        for attempt in range(policy.attempts):
            candidates = [r for r in ranking if r.eligible] or ranking
            replica = candidates[attempt % len(candidates)]
            leg = self._forward(
                kind, params, key, replica, ranking,
                hedge_allowed=attempt == 0,
                attempt=attempt,
            )
            if leg.error is not None:
                # Connection-level failure: mark down, fail over to the
                # next-ranked replica immediately (no backoff — nothing
                # was computing).
                with self._lock:
                    replica.healthy = False
                    replica.connect_failures += 1
                    self._failovers += 1
                last = (
                    503,
                    _error_bytes(
                        f"replica {replica.address} unreachable: {leg.error}"
                    ),
                )
                continue
            assert leg.status is not None and leg.raw is not None
            if leg.status in (429, 503):
                with self._lock:
                    leg.replica.busy += 1
                last = (leg.status, leg.raw)
                if attempt + 1 < policy.attempts:
                    with self._lock:
                        self._retries += 1
                    time.sleep(policy.delay(attempt))
                continue
            if leg.status == 200:
                self._record_sample(kind, leg.seconds)
                with self._lock:
                    leg.replica.ok += 1
                    self._routed += 1
                    if leg.hedged:
                        leg.replica.hedge_wins += 1
                        self._hedge_wins += 1
            return leg.status, leg.raw
        with self._lock:
            self._exhausted += 1
        assert last is not None
        status, raw = last
        return status, raw

    def _forward(
        self,
        kind: str,
        params: dict,
        key: str,
        primary: _Replica,
        ranking: list[_Replica],
        hedge_allowed: bool,
        attempt: int,
    ) -> _Leg:
        """One dispatch, possibly hedged; returns the winning leg."""
        deadline = self._hedge_deadline(kind) if hedge_allowed else None
        results: queue.Queue[_Leg] = queue.Queue()
        launched = [self._launch(results, primary, kind, params, key,
                                 attempt, hedged=False)]
        if deadline is not None:
            first = _poll(results, deadline)
            if first is None:
                backup = next(
                    (r for r in ranking
                     if r is not primary and r.eligible),
                    None,
                )
                if backup is not None:
                    with self._lock:
                        self._hedges += 1
                    self._journal_event(
                        "route.hedge", kind=kind, key=key[:16],
                        primary=primary.address, hedge=backup.address,
                        deadline_ms=round(deadline * 1000, 3),
                    )
                    launched.append(
                        self._launch(results, backup, kind, params, key,
                                     attempt, hedged=True)
                    )
            else:
                return first
        # Collect until a leg succeeds or every launched leg reported.
        collected: list[_Leg] = []
        while len(collected) < len(launched):
            leg = results.get()
            if leg.status == 200:
                return leg
            collected.append(leg)
        # No success: prefer a definitive HTTP answer over a dead socket.
        for leg in collected:
            if leg.error is None:
                return leg
        return collected[0]

    def _launch(
        self,
        results: "queue.Queue[_Leg]",
        replica: _Replica,
        kind: str,
        params: dict,
        key: str,
        attempt: int,
        hedged: bool,
    ) -> _Leg:
        leg = _Leg(replica, hedged)
        with self._lock:
            replica.dispatched += 1

        def run() -> None:
            t0 = time.perf_counter()
            try:
                leg.status, leg.raw = replica.client.request_raw(
                    "POST", f"/{kind}", params
                )
            except OSError as error:
                leg.error = error
            leg.seconds = time.perf_counter() - t0
            self._journal_event(
                "route.dispatch", kind=kind, key=key[:16],
                replica=replica.address, attempt=attempt, hedge=hedged,
                status=leg.status if leg.status is not None
                else "unreachable",
                seconds=round(leg.seconds, 6),
            )
            results.put(leg)

        threading.Thread(
            target=run, name=f"route-leg-{replica.address}", daemon=True
        ).start()
        return leg

    # -- GET passthrough (knowledge analytics) -------------------------
    def forward_get(self, path: str) -> tuple[int, bytes]:
        """Forward a read-only GET (``/query``) to a healthy replica.

        Analytics are cheap file reads, so there is no hedging and no
        retry backoff — just straight failover down the health-ranked
        replica list until one answers.
        """
        ranking = self._rank(path)
        candidates = [r for r in ranking if r.eligible] or ranking
        last: tuple[int, bytes] = (
            503, _error_bytes("no healthy replicas"),
        )
        for replica in candidates:
            try:
                status, raw = replica.client.request_raw("GET", path)
            except OSError as error:
                with self._lock:
                    replica.healthy = False
                    replica.connect_failures += 1
                last = (
                    503,
                    _error_bytes(
                        f"replica {replica.address} unreachable: {error}"
                    ),
                )
                continue
            return status, raw
        return last

    # -- read endpoints ------------------------------------------------
    def healthz(self) -> dict:
        with self._lock:
            states = {
                replica.address: (
                    "draining" if replica.draining
                    else "ok" if replica.healthy else "down"
                )
                for replica in self._replicas
            }
        up = sum(1 for state in states.values() if state == "ok")
        return {
            "status": "ok" if up else "no-healthy-replicas",
            "role": "router",
            "version": __version__,
            "uptime_seconds": round(time.monotonic() - self._started, 3),
            "replicas": states,
            "replicas_up": up,
        }

    def stats(self) -> dict:
        with self._lock:
            latency = {}
            for kind, samples in self._samples.items():
                if not samples:
                    continue
                ordered = sorted(samples)
                latency[kind] = {
                    "count": len(ordered),
                    "p50_ms": round(_quantile(ordered, 0.50) * 1000, 3),
                    "p95_ms": round(_quantile(ordered, 0.95) * 1000, 3),
                    "p99_ms": round(_quantile(ordered, 0.99) * 1000, 3),
                }
            return {
                "role": "router",
                "version": __version__,
                "uptime_seconds": round(time.monotonic() - self._started, 3),
                "requests": {
                    "total": self._requests,
                    "by_kind": dict(self._by_kind),
                    "routed": self._routed,
                    "rejected": self._rejected,
                    "retries": self._retries,
                    "failovers": self._failovers,
                    "hedges": self._hedges,
                    "hedge_wins": self._hedge_wins,
                    "retry_exhausted": self._exhausted,
                },
                "replicas": [
                    {
                        "address": replica.address,
                        "healthy": replica.healthy,
                        "draining": replica.draining,
                        "dispatched": replica.dispatched,
                        "ok": replica.ok,
                        "busy": replica.busy,
                        "connect_failures": replica.connect_failures,
                        "hedge_wins": replica.hedge_wins,
                    }
                    for replica in self._replicas
                ],
                "latency": latency,
            }

    def _journal_event(self, name: str, **attrs: Any) -> None:
        if self._journal is None:
            return
        self._journal.write({
            "type": "event",
            "span": None,
            "name": name,
            "t": round(time.perf_counter() - self._journal_origin, 6),
            "attrs": attrs,
        })


def _error_bytes(message: str) -> bytes:
    return canonical_json({"error": message}).encode("utf-8")


def _poll(results: "queue.Queue[_Leg]", timeout: float) -> _Leg | None:
    try:
        return results.get(timeout=timeout)
    except queue.Empty:
        return None


def _quantile(ordered: list[float], q: float) -> float:
    """Nearest-rank quantile: the ceil(q*n)-th smallest sample.

    The naive ``int(q * n)`` index is off by one — the p50 of a 2-sample
    window would return the *max*, biasing small-window hedge deadlines
    upward and delaying hedged re-dispatch.
    """
    if not ordered:
        return 0.0
    rank = math.ceil(q * len(ordered))
    return ordered[min(len(ordered), max(1, rank)) - 1]


# ----------------------------------------------------------------------
# HTTP layer
# ----------------------------------------------------------------------
class RouterHandler(BaseHTTPRequestHandler):
    """Routes HTTP verbs onto the shared :class:`RouterService`."""

    protocol_version = "HTTP/1.1"
    server_version = f"repro-ced-router/{__version__}"

    @property
    def service(self) -> RouterService:
        return self.server.service  # type: ignore[attr-defined]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            health = self.service.healthz()
            status = 200 if health["status"] == "ok" else 503
            self._send(status, canonical_json(health).encode("utf-8"))
        elif path == "/stats":
            self._send(
                200, canonical_json(self.service.stats()).encode("utf-8")
            )
        elif path == "/query":
            status, body = self.service.forward_get(self.path)
            self._send(status, body)
        else:
            self._send(404, _error_bytes(f"no such endpoint {path!r}"))

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        kind = path.lstrip("/")
        if kind not in QUERY_KINDS:
            self._send(404, _error_bytes(f"no such endpoint {path!r}"))
            return
        try:
            length = int(self.headers.get("Content-Length") or 0)
            raw = self.rfile.read(length) if length else b"{}"
            params = json.loads(raw.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as error:
            self._send(400, _error_bytes(f"invalid JSON body: {error}"))
            return
        if not isinstance(params, dict):
            self._send(
                400, _error_bytes("request body must be a JSON object")
            )
            return
        status, body = self.service.handle_query(kind, params)
        self._send(status, body)

    def _send(self, status: int, payload: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(payload)
        self.close_connection = True

    def log_message(self, format: str, *args: Any) -> None:
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)


# ----------------------------------------------------------------------
# Running it
# ----------------------------------------------------------------------
class RunningRouter:
    """A started router on a background thread (tests, embedding)."""

    def __init__(self, config: RouterConfig) -> None:
        self.service = RouterService(config)
        self.service.start()
        self.server = build_server(self.service, handler=RouterHandler)
        self.address = server_address_string(self.server)
        self._thread = threading.Thread(
            target=self.server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="repro-route",
            daemon=True,
        )
        self._stopped = False

    def __enter__(self) -> "RunningRouter":
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._stopped:
            return
        self._stopped = True
        self.server.shutdown()
        self._thread.join()
        self.server.server_close()
        self.service.close()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def serve_router(
    config: RouterConfig,
    echo: Callable[[str], None] = print,
    install_signals: bool = True,
) -> int:
    """Blocking entry point behind ``repro-ced route``.

    SIGTERM/SIGINT stop accepting requests, finish in-flight forwards
    and exit 0 — the same graceful-drain contract as the daemon.
    """
    service = RouterService(config)
    service.start()
    server = build_server(service, handler=RouterHandler)
    address = server_address_string(server)

    def _drain(signum: int, frame: object) -> None:
        echo(f"signal {signal.Signals(signum).name}: router stopping")
        threading.Thread(target=server.shutdown, daemon=True).start()

    if install_signals:
        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, _drain)
    echo(
        f"repro-ced router listening on {address} over "
        f"{len(config.replicas)} replica(s): {', '.join(config.replicas)}"
    )
    try:
        server.serve_forever(poll_interval=0.1)
    finally:
        server.server_close()
        service.close()
        totals = service.stats()["requests"]
        echo(
            f"router drained: {totals['total']} requests "
            f"({totals['routed']} routed, {totals['retries']} retries, "
            f"{totals['failovers']} failovers, {totals['hedges']} hedges, "
            f"{totals['hedge_wins']} hedge wins)"
        )
    return 0
