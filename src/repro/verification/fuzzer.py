"""The fuzz driver: coverage-guided machine generation × differential oracle.

``run_fuzz`` replays the bundled seed corpus, then generates batches of
random machines (:mod:`repro.verification.generator`) and pushes each
batch through the campaign runtime as ``"fuzz"`` jobs — so every oracle
pass inherits the executor's parallelism, per-job timeout, bounded retry
and the shared artifact cache.  Coverage guidance is *batch-synchronous*:
the behaviour signatures of batch *N* (machine shape and size, table row
counts, per-latency q values, fault-activation and trajectory-gap flags)
decide which machines enter the mutation pool before batch *N + 1* is
generated, and outcomes are folded in input order, so a run is a pure
function of ``(seed, iterations, options)`` regardless of ``--jobs`` or
scheduling.

Every discrepancy is minimized with the greedy shrinker (re-running the
full oracle as the predicate), persisted as a ``repro-<digest>.kiss``
reproducer next to the JSON manifest, and summarised in the manifest.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, field
from datetime import datetime, timezone
from pathlib import Path
from typing import Callable

from repro.fsm.kiss import parse_kiss, write_kiss
from repro.runtime.cache import open_cache
from repro.runtime.campaign import CampaignJob, CampaignOptions, run_campaign
from repro.runtime.executor import job_seed
from repro.util.rng import rng_for
from repro.verification.corpus import (
    load_seed_corpus,
    shrink_fsm,
    write_reproducer,
)
from repro.verification.generator import mutate_fsm, random_fsm
from repro.verification.mutation import MUTATIONS
from repro.verification.oracle import OracleConfig, run_oracle

#: Fraction of generated machines drawn by mutating a pool member once the
#: coverage pool is non-empty (the rest are fresh shape-biased machines).
_MUTATE_RATE = 0.4


@dataclass(frozen=True)
class FuzzOptions:
    """Everything one fuzz run depends on (CLI flags map 1:1)."""

    iterations: int = 200
    seed: int = 0
    jobs: int = 1
    batch_size: int = 25
    #: Oracle knobs.
    latency: int = 2
    max_faults: int | None = 40
    solve_iterations: int = 200
    mutation: str = "none"
    check_trajectory_gap: bool = True
    #: Stop starting new batches once this much wall time (s) is spent.
    time_budget: float | None = None
    #: Output locations.
    corpus_dir: str = "fuzz-corpus"
    manifest_path: str | None = None  # default: <corpus_dir>/fuzz-manifest.json
    #: Behaviour toggles.
    replay_corpus: bool = True
    shrink: bool = True
    shrink_budget: int = 40
    max_shrink: int = 5
    #: Executor / cache passthrough (PR 1 runtime).
    timeout: float | None = None
    retries: int = 1
    cache_dir: str | None = None
    cache: bool = True

    def __post_init__(self) -> None:
        if self.mutation not in MUTATIONS:
            raise ValueError(
                f"mutation must be one of {MUTATIONS}, got {self.mutation!r}"
            )

    def oracle_config(self) -> OracleConfig:
        return OracleConfig(
            latency=self.latency,
            max_faults=self.max_faults,
            solve_iterations=self.solve_iterations,
            mutation=self.mutation,
            check_trajectory_gap=self.check_trajectory_gap,
        )


@dataclass
class FuzzRun:
    """Everything a fuzz run produced."""

    manifest: dict
    manifest_file: Path
    num_machines: int = 0
    discrepancies: list[dict] = field(default_factory=list)
    reproducers: list[Path] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.discrepancies


def run_fuzz(
    options: FuzzOptions = FuzzOptions(),
    echo: Callable[[str], None] | None = None,
) -> FuzzRun:
    """Run one full fuzz campaign; write manifest + reproducers; return both."""
    started = time.perf_counter()
    say = echo or (lambda line: None)
    config = options.oracle_config()
    campaign_options = CampaignOptions(
        jobs=options.jobs,
        cache_dir=options.cache_dir,
        cache=options.cache,
        timeout=options.timeout,
        retries=options.retries,
        fallback=True,
        manifest_path=None,
        name="fuzz",
    )

    machine_rows: list[dict] = []
    discrepancies: list[dict] = []
    pool: list[str] = []  # KISS texts of coverage-novel machines
    signatures: set[tuple] = set()
    kiss_by_name: dict[str, str] = {}
    budget_hit = False

    def out_of_time() -> bool:
        nonlocal budget_hit
        if options.time_budget is None:
            return False
        if time.perf_counter() - started >= options.time_budget:
            budget_hit = True
            return True
        return False

    def run_batch(batch: list[tuple[str, str]], label: str) -> None:
        """One batch (kiss, name) through the campaign; fold results in order."""
        jobs = [
            CampaignJob(
                kind="fuzz",
                name=name,
                spec=(kiss, name, job_seed(options.seed, name), config),
            )
            for kiss, name in batch
        ]
        kiss_by_name.update({name: kiss for kiss, name in batch})
        run = run_campaign(jobs, campaign_options)
        found_before = len(discrepancies)
        for job in jobs:  # input order: deterministic pool updates
            result = run.values.get(job.name)
            if result is None:  # executor-level failure (timeout/retry-out)
                error = next(
                    (r.error for r in run.reports if r.name == job.name), "?"
                )
                result = {
                    "name": job.name,
                    "seed": job.spec[2],
                    "ok": False,
                    "discrepancies": [
                        {"kind": "crash", "detail": f"job failed: {error}"}
                    ],
                    "features": {},
                }
            machine_rows.append(result)
            signature = _signature(result)
            if signature not in signatures:
                signatures.add(signature)
                pool.append(kiss_by_name[job.name])
            if not result["ok"]:
                discrepancies.append(result)
        say(
            f"{label}: {len(batch)} machines, "
            f"{len(discrepancies) - found_before} new discrepancies, "
            f"{len(signatures)} coverage signatures"
        )

    # Phase 1: replay the persisted seed corpus through the same oracle.
    if options.replay_corpus:
        corpus = load_seed_corpus()
        if corpus:
            run_batch(
                [(write_kiss(fsm), fsm.name) for fsm in corpus], "corpus"
            )

    # Phase 2: coverage-guided generation.
    index = 0
    while index < options.iterations and not out_of_time():
        size = min(options.batch_size, options.iterations - index)
        batch: list[tuple[str, str]] = []
        for _ in range(size):
            name = f"fz-{options.seed}-{index}"
            rng = rng_for(options.seed, "fuzz", index)
            if pool and rng.random() < _MUTATE_RATE:
                base = parse_kiss(
                    pool[int(rng.integers(len(pool)))], name=name
                )
                fsm = mutate_fsm(base, rng, name=name)
            else:
                fsm = random_fsm(rng, name=name)
            batch.append((write_kiss(fsm), fsm.name))
            index += 1
        run_batch(batch, f"batch {index - size}..{index - 1}")

    # Phase 3: shrink + persist reproducers for every discrepancy.
    reproducers: list[Path] = []
    if discrepancies:
        Path(options.corpus_dir).mkdir(parents=True, exist_ok=True)
        shrink_cache = open_cache(options.cache_dir, enabled=options.cache)
        for position, entry in enumerate(discrepancies):
            fsm = parse_kiss(kiss_by_name[entry["name"]], name=entry["name"])
            if options.shrink and position < options.max_shrink:
                # Evaluate candidates through a KISS round-trip: the state
                # *declaration order* fixes the binary encoding, and the
                # banked file must replay exactly what the oracle saw.
                fsm = shrink_fsm(
                    fsm,
                    lambda candidate: not run_oracle(
                        parse_kiss(write_kiss(candidate), name=candidate.name),
                        seed=entry["seed"],
                        config=config,
                        cache=shrink_cache,
                    ).ok,
                    budget=options.shrink_budget,
                )
            reason = "; ".join(
                f"{d['kind']}: {d['detail']}" for d in entry["discrepancies"]
            )
            path = write_reproducer(
                fsm,
                options.corpus_dir,
                reason=f"seed={entry['seed']} mutation={options.mutation}\n"
                + reason,
            )
            entry["reproducer"] = str(path)
            reproducers.append(path)
            say(f"reproducer: {path} ({entry['name']})")

    # Phase 4: the manifest.
    wall = time.perf_counter() - started
    gap_eligible = [
        row for row in machine_rows if "trajectory_gap" in row.get("features", {})
    ]
    gap_machines = [
        row for row in gap_eligible if row["features"]["trajectory_gap"] > 0
    ]
    manifest = {
        "fuzz": {
            "iterations": options.iterations,
            "seed": options.seed,
            "jobs": options.jobs,
            "batch_size": options.batch_size,
            "latency": options.latency,
            "max_faults": options.max_faults,
            "solve_iterations": options.solve_iterations,
            "mutation": options.mutation,
            "time_budget": options.time_budget,
            "replay_corpus": options.replay_corpus,
            "corpus_dir": options.corpus_dir,
        },
        "created": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "totals": {
            "machines": len(machine_rows),
            "discrepant": len(discrepancies),
            "coverage_signatures": len(signatures),
            "time_budget_hit": budget_hit,
            "trajectory_gap": {
                "eligible": len(gap_eligible),
                "with_gap": len(gap_machines),
                "rate": (
                    round(len(gap_machines) / len(gap_eligible), 4)
                    if gap_eligible
                    else None
                ),
            },
            "wall_seconds": round(wall, 3),
        },
        "discrepancies": [
            {
                "machine": entry["name"],
                "seed": entry["seed"],
                "kinds": sorted({d["kind"] for d in entry["discrepancies"]}),
                "details": entry["discrepancies"],
                "reproducer": entry.get("reproducer"),
            }
            for entry in discrepancies
        ],
        "machines": [
            {
                "name": row["name"],
                "ok": row["ok"],
                "features": row.get("features", {}),
            }
            for row in machine_rows
        ],
    }
    manifest_file = Path(
        options.manifest_path
        or Path(options.corpus_dir) / "fuzz-manifest.json"
    )
    manifest_file.parent.mkdir(parents=True, exist_ok=True)
    manifest_file.write_text(json.dumps(manifest, indent=2) + "\n")
    say(
        f"fuzz: {len(machine_rows)} machines, {len(discrepancies)} "
        f"discrepancies, manifest {manifest_file}"
    )
    return FuzzRun(
        manifest=manifest,
        manifest_file=manifest_file,
        num_machines=len(machine_rows),
        discrepancies=manifest["discrepancies"],
        reproducers=reproducers,
    )


def _signature(result: dict) -> tuple:
    """Coarse behaviour signature driving coverage-guided pool admission."""
    features = result.get("features", {})
    rows = features.get("rows", {})
    q_lp = features.get("q_lp", {})
    return (
        features.get("num_states"),
        features.get("num_inputs"),
        features.get("num_outputs"),
        tuple(sorted((p, _bucket(n)) for p, n in rows.items())),
        tuple(sorted(q_lp.items())),
        bool(features.get("truncated")),
        features.get("activated_runs", 0) > 0,
        features.get("trajectory_gap", 0) > 0,
        not result["ok"],
    )


def _bucket(count: int) -> int:
    """Log-ish bucketing so row-count noise doesn't explode the signature set."""
    if count <= 0:
        return 0
    bucket = 1
    while count >= 10:
        count //= 10
        bucket += 1
    return bucket
