"""Deliberate breakage of the pipeline, to prove the oracle has teeth.

A fuzzer that only ever reports "no discrepancies" is indistinguishable
from one that checks nothing.  The mutation smoke test runs the fuzzer
with a known bug injected into the design pipeline and demands it be
caught: ``repro-ced fuzz --mutation rounding`` must report discrepancies
where the clean run reports none.

The ``"rounding"`` mutation makes the LP + randomized-rounding path accept
*any* β set as covering: :func:`repro.core.rounding.covered_rows` is
replaced with an all-ones stub and the pipeline's own safety net
(:func:`repro.core.search.covers_all`, asserted on the final result) is
disabled with it.  Both must be patched together — the production code is
defensive enough that breaking the rounding step alone is masked by the
final assertion.  The independently implemented oracle checks (pure-Python
coverage, fault-injection of the built hardware) are untouched and flag
the silently non-covering solutions.

The greedy solver is built on :func:`repro.core.cover.batch_coverage` and
is unaffected, so the mutated run also exercises the ``q_lp ≤ q_greedy``
ordering check from the other side.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

import numpy as np

MUTATIONS = ("none", "rounding")


def _all_covered(rows: np.ndarray, betas) -> np.ndarray:  # noqa: ANN001
    """Stand-in for covered_rows that vacuously accepts every row."""
    return np.ones(np.asarray(rows).shape[0], dtype=bool)


def _always_true(rows: np.ndarray, betas) -> bool:  # noqa: ANN001
    return True


@contextmanager
def apply_mutation(name: str) -> Iterator[None]:
    """Temporarily install a known pipeline bug (``"none"`` is a no-op)."""
    if name not in MUTATIONS:
        raise ValueError(
            f"unknown mutation {name!r}; expected one of {MUTATIONS}"
        )
    if name == "none":
        yield
        return

    import repro.core.rounding as rounding
    import repro.core.search as search

    saved_covered_rows = rounding.covered_rows
    saved_covers_all = search.covers_all
    rounding.covered_rows = _all_covered
    search.covers_all = _always_true
    try:
        yield
    finally:
        rounding.covered_rows = saved_covered_rows
        search.covers_all = saved_covers_all
