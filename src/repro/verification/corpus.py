"""Seed corpus, reproducer files, and the greedy shrinker.

The bundled corpus (``repro/verification/corpus/*.kiss``) holds small
machines pinning every fuzzer shape plus historical finds (e.g. the
``gapcase`` machine whose trajectory-semantics design violates the
hardware bound).  Tier-1 tests replay the whole corpus through the full
differential oracle, so once a fuzzed failure is minimized and written
back it can never silently regress.

Reproducers are content-addressed (``repro-<digest>.kiss``) with the
failure description in ``#`` comment headers — :func:`parse_kiss` skips
comments, so a reproducer file is also directly loadable by
``repro-ced verify --kiss``.
"""

from __future__ import annotations

import hashlib
from importlib import resources
from pathlib import Path
from typing import Callable

from repro.fsm.kiss import parse_kiss, write_kiss
from repro.fsm.machine import FSM, Transition


def load_seed_corpus() -> list[FSM]:
    """All bundled corpus machines, named by file stem, sorted by name."""
    machines: list[FSM] = []
    corpus = resources.files("repro.verification") / "corpus"
    for entry in sorted(corpus.iterdir(), key=lambda item: item.name):
        if entry.name.endswith(".kiss"):
            text = entry.read_text(encoding="utf-8")
            machines.append(parse_kiss(text, name=entry.name[: -len(".kiss")]))
    return machines


def write_reproducer(
    fsm: FSM,
    directory: str | Path,
    reason: str = "",
) -> Path:
    """Persist a failing machine as ``repro-<digest>.kiss``; returns the path."""
    body = write_kiss(fsm)
    digest = hashlib.sha256(body.encode("utf-8")).hexdigest()[:12]
    target = Path(directory) / f"repro-{digest}.kiss"
    target.parent.mkdir(parents=True, exist_ok=True)
    header = [f"# reproducer for {fsm.name}"]
    for line in reason.splitlines():
        header.append(f"# {line}")
    target.write_text("\n".join(header) + "\n" + body, encoding="utf-8")
    return target


def shrink_fsm(
    fsm: FSM,
    still_fails: Callable[[FSM], bool],
    budget: int = 200,
) -> FSM:
    """Greedy structural minimization preserving ``still_fails``.

    Three passes, largest reductions first, repeated to a fixed point or
    until ``budget`` candidate evaluations are spent: drop a non-reset
    state with every transition touching it, drop a single transition,
    simplify an output pattern to all zeros.  The machine's *name* is kept
    so seed-derived randomness (input alphabets, fault sampling) replays
    identically on the shrunk machine.
    """
    spent = 0

    def attempt(candidate_fn: Callable[[], FSM | None]) -> FSM | None:
        nonlocal spent
        if spent >= budget:
            return None
        candidate = candidate_fn()
        if candidate is None:
            return None
        spent += 1
        try:
            if still_fails(candidate):
                return candidate
        except Exception:
            return None
        return None

    current = fsm
    progress = True
    while progress and spent < budget:
        progress = False
        # Pass 1: drop whole states.
        for state in list(current.states):
            if state == current.reset_state or current.num_states == 1:
                continue
            shrunk = attempt(lambda s=state: _without_state(current, s))
            if shrunk is not None:
                current = shrunk
                progress = True
        # Pass 2: drop single transitions.
        index = 0
        while index < len(current.transitions):
            shrunk = attempt(lambda i=index: _without_transition(current, i))
            if shrunk is not None:
                current = shrunk
                progress = True
            else:
                index += 1
        # Pass 3: flatten outputs to zeros.
        for index, transition in enumerate(current.transitions):
            if set(transition.output) == {"0"}:
                continue
            shrunk = attempt(lambda i=index: _zero_output(current, i))
            if shrunk is not None:
                current = shrunk
                progress = True
    return current


def _rebuild(fsm: FSM, states: list[str], transitions: list[Transition]) -> FSM | None:
    try:
        return FSM(
            name=fsm.name,
            num_inputs=fsm.num_inputs,
            num_outputs=fsm.num_outputs,
            states=states,
            transitions=transitions,
            reset_state=fsm.reset_state,
        )
    except ValueError:
        return None


def _without_state(fsm: FSM, state: str) -> FSM | None:
    states = [name for name in fsm.states if name != state]
    transitions = [
        t for t in fsm.transitions if t.src != state and t.dst != state
    ]
    return _rebuild(fsm, states, transitions)


def _without_transition(fsm: FSM, index: int) -> FSM | None:
    transitions = [t for i, t in enumerate(fsm.transitions) if i != index]
    return _rebuild(fsm, list(fsm.states), transitions)


def _zero_output(fsm: FSM, index: int) -> FSM | None:
    transitions = list(fsm.transitions)
    old = transitions[index]
    transitions[index] = Transition(
        input_cube=old.input_cube,
        src=old.src,
        dst=old.dst,
        output="0" * fsm.num_outputs,
    )
    return _rebuild(fsm, list(fsm.states), transitions)
