"""Differential verification & fuzzing harness for the CED pipeline.

The paper's central claim — every modeled fault is caught within ``p``
transitions by the parity CED chosen via LP + randomized rounding — is
point-checked by the unit tests on fixed machines.  This package is the
systematic adversary:

* :mod:`repro.verification.generator` — a coverage-guided FSM fuzzer that
  generates random machines biased toward edge shapes (single-state,
  unreachable states, degenerate outputs, dense/sparse transition
  structure) and structure-preserving mutations of interesting finds;
* :mod:`repro.verification.oracle` — the differential oracle run on every
  fuzzed machine: exact branch-and-bound vs LP+rounding vs greedy
  (``q_exact ≤ q_lp ≤ q_greedy``, all solutions independently re-checked
  against the detectability table), checker-semantics tables vs direct
  netlist simulation, and the end-to-end bounded-latency guarantee via
  fault injection with zero tolerated violations;
* :mod:`repro.verification.corpus` — the persisted seed corpus of
  minimized reproducers (KISS files) plus the greedy shrinker;
* :mod:`repro.verification.mutation` — deliberate fault injection into the
  pipeline itself (mutation smoke tests proving the oracle catches what it
  is supposed to catch);
* :mod:`repro.verification.fuzzer` — the driver: batches of fuzzed
  machines through the campaign executor (parallel, per-job timeouts,
  bounded retry, shared artifact cache), a JSON discrepancy manifest, and
  auto-shrunk reproducers written back to the corpus.

CLI entry point: ``repro-ced fuzz``.
"""

from repro.verification.corpus import load_seed_corpus, shrink_fsm, write_reproducer
from repro.verification.fuzzer import FuzzOptions, FuzzRun, run_fuzz
from repro.verification.generator import FUZZ_SHAPES, mutate_fsm, random_fsm
from repro.verification.oracle import (
    Discrepancy,
    OracleConfig,
    OracleReport,
    run_oracle,
)

__all__ = [
    "FUZZ_SHAPES",
    "Discrepancy",
    "FuzzOptions",
    "FuzzRun",
    "OracleConfig",
    "OracleReport",
    "load_seed_corpus",
    "mutate_fsm",
    "random_fsm",
    "run_fuzz",
    "run_oracle",
    "shrink_fsm",
    "write_reproducer",
]
