"""Differential verification & fuzzing harness for the CED pipeline.

The paper's central claim — every modeled fault is caught within ``p``
transitions by the parity CED chosen via LP + randomized rounding — is
point-checked by the unit tests on fixed machines.  This package is the
systematic adversary:

* :mod:`repro.verification.generator` — a coverage-guided FSM fuzzer that
  generates random machines biased toward edge shapes (single-state,
  unreachable states, degenerate outputs, dense/sparse transition
  structure) and structure-preserving mutations of interesting finds;
* :mod:`repro.verification.oracle` — the differential oracle run on every
  fuzzed machine: exact branch-and-bound vs LP+rounding vs greedy
  (``q_exact ≤ q_lp ≤ q_greedy``, all solutions independently re-checked
  against the detectability table), checker-semantics tables vs direct
  netlist simulation, and the end-to-end bounded-latency guarantee via
  fault injection with zero tolerated violations;
* :mod:`repro.verification.corpus` — the persisted seed corpus of
  minimized reproducers (KISS files) plus the greedy shrinker;
* :mod:`repro.verification.mutation` — deliberate fault injection into the
  pipeline itself (mutation smoke tests proving the oracle catches what it
  is supposed to catch);
* :mod:`repro.verification.fuzzer` — the driver: batches of fuzzed
  machines through the campaign executor (parallel, per-job timeouts,
  bounded retry, shared artifact cache), a JSON discrepancy manifest, and
  auto-shrunk reproducers written back to the corpus;
* :mod:`repro.verification.exhaustive` — the exact tier: a breadth-first
  product-machine search that *proves* the bounded-latency property per
  collapsed fault (exact worst-case latency, or a replayable escape
  witness) instead of sampling it, degrading to the fuzzer above a state
  budget;
* :mod:`repro.verification.certificate` — versioned, byte-stable
  machine-readable certificates recording what the exact tier
  established.

CLI entry points: ``repro-ced fuzz``, ``repro-ced verify --exhaustive``.
"""

from repro.verification.certificate import (
    CERTIFICATE_KIND,
    CERTIFICATE_SCHEMA,
    certificate_json,
    parse_certificate,
    render_certificate,
    validate_certificate,
)
from repro.verification.corpus import load_seed_corpus, shrink_fsm, write_reproducer
from repro.verification.exhaustive import (
    ExhaustiveConfig,
    ExhaustiveReport,
    FaultVerdict,
    exhaustive_check,
    replay_witness,
    verify_exhaustive,
)
from repro.verification.fuzzer import FuzzOptions, FuzzRun, run_fuzz
from repro.verification.generator import FUZZ_SHAPES, mutate_fsm, random_fsm
from repro.verification.oracle import (
    Discrepancy,
    OracleConfig,
    OracleReport,
    run_oracle,
)

__all__ = [
    "CERTIFICATE_KIND",
    "CERTIFICATE_SCHEMA",
    "Discrepancy",
    "ExhaustiveConfig",
    "ExhaustiveReport",
    "FUZZ_SHAPES",
    "FaultVerdict",
    "FuzzOptions",
    "FuzzRun",
    "OracleConfig",
    "OracleReport",
    "certificate_json",
    "exhaustive_check",
    "load_seed_corpus",
    "mutate_fsm",
    "parse_certificate",
    "random_fsm",
    "render_certificate",
    "replay_witness",
    "run_fuzz",
    "run_oracle",
    "shrink_fsm",
    "validate_certificate",
    "verify_exhaustive",
    "write_reproducer",
]
