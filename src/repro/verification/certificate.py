"""Machine-readable bounded-latency certificates.

A certificate is the durable, diffable record of one verification run:
what was verified (circuit + full config fingerprint), how (``mode:
"exhaustive"`` for the exact engine, ``mode: "sampled"`` for the
fuzzer fallback above the state budget), and what was established
(reachable-state inventory, per-fault exact latency histogram, escape
witnesses, the headline ``bound_holds``).

Certificates are **deterministic by construction**: plain JSON types
only, no wall-clock timestamps, no environment data, and a canonical
serialization (:func:`certificate_json`) with sorted keys and compact
separators — so the same config always yields byte-identical JSON,
whether computed fresh or served from the artifact cache.  The schema is
versioned like the journal schema (``docs/certificate-schema.md``); any
change to field meaning bumps :data:`CERTIFICATE_SCHEMA`.

Layering: ``repro.runtime.report`` renders and diffs certificates by
importing this module — never the reverse.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ced.verify import VerificationReport
    from repro.faults.collapse import FaultSelection
    from repro.flow import CedDesign
    from repro.verification.exhaustive import ExhaustiveConfig, ExhaustiveReport

#: Schema history: 1 — original exhaustive/sampled certificates (PR 6);
#: 2 — behavior-exact fault collapsing: ``faults`` gained ``classes`` /
#: ``checked_universe``, exhaustive idle/proved/escaped counts and the
#: latency histogram are multiplicity-expanded to the full universe, and
#: ``fault_classes`` records every checked class that stands for more
#: than one universe fault.
CERTIFICATE_SCHEMA = 2
CERTIFICATE_KIND = "bounded-latency-certificate"

#: Keys every valid certificate carries, regardless of mode.
_REQUIRED_KEYS = (
    "schema",
    "kind",
    "circuit",
    "mode",
    "config",
    "fingerprint",
    "design",
    "machine",
    "alphabet",
    "faults",
    "summary",
)
_MODES = ("exhaustive", "sampled")


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def _common_body(
    fsm_name: str,
    config: "ExhaustiveConfig",
    design: "CedDesign",
    selection: "FaultSelection",
    alphabet_size: int,
    input_mode: str,
    num_patterns: int,
) -> dict:
    from repro.runtime.cache import fingerprint

    synthesis = design.synthesis
    return {
        "schema": CERTIFICATE_SCHEMA,
        "kind": CERTIFICATE_KIND,
        "circuit": fsm_name,
        "config": {
            "latency": config.latency,
            "semantics": config.semantics,
            "encoding": config.encoding,
            "max_faults": config.max_faults,
            "multilevel": config.multilevel,
            "seed": config.seed,
            "state_budget": config.state_budget,
        },
        "fingerprint": fingerprint("certificate", fsm_name, config),
        "design": {
            "q": design.num_parity_bits,
            "betas": [int(beta) for beta in design.solve_result.betas],
            "source": design.solve_result.incumbent_source,
            "gates": design.gates,
            "cost": float(design.cost),
        },
        "machine": {
            "inputs": synthesis.num_inputs,
            "state_bits": synthesis.num_state_bits,
            "outputs": synthesis.num_fsm_outputs,
            "bits": synthesis.num_bits,
            "states": len(synthesis.fsm.states),
            "patterns": num_patterns,
        },
        "alphabet": {"size": alphabet_size, "mode": input_mode},
        "faults": {
            "universe": selection.universe,
            "collapsed": selection.structural,
            "classes": selection.num_classes,
            "checked": len(selection.checked),
            "checked_universe": selection.checked_universe,
        },
    }


def build_exhaustive_certificate(
    fsm_name: str,
    config: "ExhaustiveConfig",
    design: "CedDesign",
    report: "ExhaustiveReport",
    selection: "FaultSelection",
) -> dict:
    """Certificate for an exact (``mode: "exhaustive"``) verification.

    Fault counts in ``faults`` (idle/proved/escaped), the latency
    histogram and the summary are **multiplicity-expanded**: every checked
    representative's verdict is weighted by its behavior-equivalence class
    size, so the certificate speaks for the full universe share the
    checked list stands for.  ``fault_classes`` records each checked class
    with more than one member.
    """
    universe_counts = report.universe_counts()
    certificate = _common_body(
        fsm_name,
        config,
        design,
        selection=selection,
        alphabet_size=len(report.alphabet),
        input_mode=report.input_mode,
        num_patterns=report.num_patterns,
    )
    escapes = [
        verdict.witness
        for verdict in report.escapes
        if verdict.witness is not None
    ]
    fault_classes = [
        {
            "representative": cls.representative.name,
            "multiplicity": cls.multiplicity,
            "members": list(cls.member_names[1:]),
        }
        for cls in selection.checked_classes
        if cls.multiplicity > 1
    ]
    certificate.update(
        {
            "mode": "exhaustive",
            "faults": {
                **certificate["faults"],
                "idle": universe_counts["idle"],
                "proved": universe_counts["proved"],
                "escaped": universe_counts["escaped"],
            },
            "fault_classes": fault_classes,
            "reachable": {
                "good": report.reachable_good,
                "good_count": len(report.reachable_good),
                "activation": report.activation_states,
                "activation_count": len(report.activation_states),
            },
            "latency_histogram": {
                str(k): count
                for k, count in sorted(report.histogram().items())
            },
            "worst_latency": report.worst_latency,
            "escapes": escapes,
            "summary": {
                "bound_holds": report.clean,
                "proved": universe_counts["proved"],
                "escaped": universe_counts["escaped"],
                "worst_latency": report.worst_latency,
            },
        }
    )
    return certificate


def build_sampled_certificate(
    fsm_name: str,
    config: "ExhaustiveConfig",
    design: "CedDesign",
    report: "VerificationReport",
    selection: "FaultSelection",
    num_patterns: int,
    input_mode: str,
    alphabet_size: int,
) -> dict:
    """Fallback certificate (``mode: "sampled"``) above the state budget.

    A sampled certificate makes a strictly weaker claim: ``bound_holds``
    means *no violation was observed*, not that none exists, and the
    latency histogram counts observed detections over the sampled runs —
    it is deliberately **not** multiplicity-expanded (the runs only
    exercised the representatives that happened to activate).
    """
    certificate = _common_body(
        fsm_name,
        config,
        design,
        selection=selection,
        alphabet_size=alphabet_size,
        input_mode=input_mode,
        num_patterns=num_patterns,
    )
    histogram = {
        str(k): count
        for k, count in sorted(report.detection_latencies.items())
    }
    observed = [int(k) for k in report.detection_latencies]
    certificate.update(
        {
            "mode": "sampled",
            "latency_histogram": histogram,
            "worst_latency": max(observed) if observed else None,
            "escapes": [],
            "sampled": {
                #: The fuzzer further subsamples the checked representatives
                #: (its own max_faults cap); this is what it actually ran.
                "faults": report.num_faults,
                "runs": report.num_runs,
                "activated_runs": report.num_activated_runs,
                "detected_within_bound": report.num_detected_within_bound,
                "violations": list(report.violations),
            },
            "summary": {
                "bound_holds": report.clean,
                "proved": 0,
                "escaped": len(report.violations),
                "worst_latency": max(observed) if observed else None,
            },
        }
    )
    return certificate


# ----------------------------------------------------------------------
# Serialization / validation
# ----------------------------------------------------------------------
def certificate_json(certificate: dict) -> str:
    """Canonical byte-stable JSON: sorted keys, compact, no NaN."""
    return json.dumps(
        certificate, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def parse_certificate(text: str) -> dict:
    """Parse and validate canonical certificate JSON."""
    certificate = json.loads(text)
    validate_certificate(certificate)
    return certificate


def validate_certificate(certificate: dict) -> None:
    """Raise ``ValueError`` unless ``certificate`` is one we understand."""
    if not isinstance(certificate, dict):
        raise ValueError("certificate must be a JSON object")
    missing = [key for key in _REQUIRED_KEYS if key not in certificate]
    if missing:
        raise ValueError(f"certificate missing keys: {', '.join(missing)}")
    if certificate["kind"] != CERTIFICATE_KIND:
        raise ValueError(f"unknown certificate kind {certificate['kind']!r}")
    if certificate["schema"] != CERTIFICATE_SCHEMA:
        raise ValueError(
            f"unsupported certificate schema {certificate['schema']!r} "
            f"(this build reads schema {CERTIFICATE_SCHEMA})"
        )
    if certificate["mode"] not in _MODES:
        raise ValueError(f"unknown certificate mode {certificate['mode']!r}")
    if certificate["mode"] == "sampled" and "sampled" not in certificate:
        raise ValueError("sampled certificate missing 'sampled' section")
    faults = certificate["faults"]
    missing_fault_keys = [
        key
        for key in ("universe", "collapsed", "classes", "checked", "checked_universe")
        if key not in faults
    ]
    if missing_fault_keys:
        raise ValueError(
            "certificate faults section missing keys: "
            + ", ".join(missing_fault_keys)
        )


def render_certificate(certificate: dict) -> str:
    """Human-readable multi-line rendering (CLI + report)."""
    summary = certificate["summary"]
    faults = certificate["faults"]
    design = certificate["design"]
    config = certificate["config"]
    status = "BOUND HOLDS" if summary["bound_holds"] else "BOUND VIOLATED"
    mode = certificate["mode"]
    lines = [
        f"{certificate['circuit']}: {status} "
        f"(p={config['latency']}, mode={mode})",
        f"  design: q={design['q']} betas={design['betas']} "
        f"source={design['source']} gates={design['gates']}",
        f"  faults: {faults['checked']} representatives checked, "
        f"standing for {faults['checked_universe']} of "
        f"{faults['universe']} universe faults "
        f"({faults['collapsed']} after equivalence, "
        f"{faults['classes']} classes)",
    ]
    if mode == "exhaustive":
        reachable = certificate["reachable"]
        lines.append(
            f"  reachable: {reachable['good_count']} good states, "
            f"{reachable['activation_count']} activation states, "
            f"{certificate['machine']['patterns']} patterns swept"
        )
        lines.append(
            f"  verdicts: {faults['proved']} proved, "
            f"{faults['idle']} idle, {faults['escaped']} escaped"
        )
    else:
        sampled = certificate["sampled"]
        lines.append(
            f"  sampled: {sampled['activated_runs']} activated of "
            f"{sampled['runs']} runs, "
            f"{sampled['detected_within_bound']} detected in bound"
        )
    histogram = certificate.get("latency_histogram", {})
    if histogram:
        spread = " ".join(
            f"{k}:{histogram[k]}" for k in sorted(histogram, key=int)
        )
        kind = "exact worst-case" if mode == "exhaustive" else "observed"
        lines.append(f"  latency histogram ({kind}): {spread}")
    if summary["worst_latency"] is not None:
        lines.append(f"  worst latency: {summary['worst_latency']}")
    for witness in certificate.get("escapes", []):
        lines.append(
            f"  escape: fault={witness['fault']} "
            f"inputs={witness['inputs']} "
            f"activation_cycle={witness['activation_cycle']}"
        )
    return "\n".join(lines)
