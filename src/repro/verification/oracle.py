"""The differential oracle: one fuzzed machine, every cross-check.

Each check pits two *independent* computations of the same quantity
against each other, so a bug in either side surfaces as a discrepancy
rather than silently agreeing with itself:

* **solver order** — exact branch-and-bound ≤ LP+randomized-rounding ≤
  greedy cover (``q_exact ≤ q_lp ≤ q_greedy``) per latency, and each
  solver's q monotone non-increasing in the latency bound;
* **coverage** — every β set returned by any solver re-checked against
  the full detectability table with a from-scratch pure-Python GF(2)
  predicate (:func:`independent_covers`), not the vectorised
  :mod:`repro.core.cover` the solvers themselves use;
* **table cross-check** — the p = 1 checker-semantics table re-derived by
  direct netlist simulation (own reachability BFS, own bit packing) and
  compared set-for-set; the trajectory and checker tables must agree at
  p = 1 (they only diverge once trajectories separate);
* **bounded latency** — hardware built from the checker-table solution is
  fault-injected via :mod:`repro.ced.verify`; zero violations tolerated,
  and the fault-free machine must never raise the flag.

Any exception anywhere is itself a discrepancy (kind ``"crash"``): the
pipeline must *accept* every valid machine the fuzzer can produce.

The oracle optionally shares the campaign runtime's artifact cache: the
synthesis and table-extraction stages reuse the same fingerprint scheme as
:mod:`repro.flow`, so replaying a fuzz seed is warm-cache fast.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ced.hardware import build_ced_hardware
from repro.ced.verify import verify_bounded_latency, verify_no_false_alarms
from repro.core.detectability import (
    DetectabilityTable,
    TableConfig,
    extract_tables,
    input_alphabet,
)
from repro.core.search import (
    SolveConfig,
    solve_for_latencies,
    solve_greedy_for_latencies,
)
from repro.faults.model import Fault, StuckAtModel, is_netlist_fault
from repro.fsm.machine import FSM
from repro.logic.sim import evaluate_batch
from repro.logic.synthesis import SynthesisResult, synthesize_fsm
from repro.runtime.cache import Cache, NullCache, cached_call, fingerprint
from repro.verification.mutation import apply_mutation


@dataclass(frozen=True)
class OracleConfig:
    """Knobs of one differential-oracle pass."""

    latency: int = 2
    max_faults: int | None = 40
    solve_iterations: int = 200
    #: Exact solver gate: only run branch-and-bound when affordable.
    exact_max_bits: int = 10
    exact_max_rows: int = 2000
    exact_node_budget: int = 200_000
    #: Fault-injection campaign size.
    runs_per_fault: int = 2
    run_length: int = 20
    verify_max_faults: int = 25
    #: Also build trajectory-semantics hardware and measure whether the
    #: bound holds for it (a *measurement*, not a discrepancy — the gap is
    #: a documented reproduction finding).
    check_trajectory_gap: bool = True
    #: Deliberate pipeline breakage (see repro.verification.mutation).
    mutation: str = "none"


@dataclass(frozen=True)
class Discrepancy:
    """One oracle disagreement."""

    kind: str  # solver-order | coverage | table-mismatch | bound-violation
    #        | false-alarm | crash
    detail: str


@dataclass
class OracleReport:
    """Everything one machine's oracle pass produced."""

    name: str
    discrepancies: list[Discrepancy] = field(default_factory=list)
    #: Behaviour signature inputs for the coverage-guided fuzzer plus
    #: manifest statistics (plain JSON-able values only).
    features: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.discrepancies

    def add(self, kind: str, detail: str) -> None:
        self.discrepancies.append(Discrepancy(kind, detail))


# ----------------------------------------------------------------------
# Independent re-implementations (deliberately naive)
# ----------------------------------------------------------------------
def independent_covers(rows: np.ndarray, betas: list[int]) -> bool:
    """Pure-Python GF(2) coverage check, independent of repro.core.cover."""
    row_list = [[int(word) for word in row] for row in np.asarray(rows)]
    for row in row_list:
        detected = False
        for word in row:
            if word == 0:
                continue
            for beta in betas:
                if bin(word & int(beta)).count("1") % 2 == 1:
                    detected = True
                    break
            if detected:
                break
        if not detected:
            return False
    return True


def direct_first_step_diffs(
    synthesis: SynthesisResult,
    model: StuckAtModel,
    faults: list[Fault],
    alphabet: np.ndarray,
) -> set[int]:
    """All non-zero activation difference words, by direct simulation.

    Re-derives the p = 1 checker table from scratch: own reachability BFS
    over the good netlist, one :func:`evaluate_batch` call per (state,
    fault), own bit packing.  Shares nothing with the memoized path
    enumeration in :mod:`repro.core.detectability`.
    """
    def pack(bits: np.ndarray) -> int:
        word = 0
        for index, bit in enumerate(bits.tolist()):
            word |= int(bit) << index
        return word

    def patterns_for(code: int) -> np.ndarray:
        return np.stack([
            synthesis.pattern(code, int(value)) for value in alphabet
        ])

    state_mask = (1 << synthesis.num_state_bits) - 1
    seen = {synthesis.reset_code}
    frontier = [synthesis.reset_code]
    good_words: dict[int, list[int]] = {}
    while frontier:
        code = frontier.pop()
        responses = evaluate_batch(synthesis.netlist, patterns_for(code))
        words = [pack(row) for row in responses]
        good_words[code] = words
        for word in words:
            next_code = word & state_mask
            if next_code not in seen:
                seen.add(next_code)
                frontier.append(next_code)

    diffs: set[int] = set()
    for fault in faults:
        if not is_netlist_fault(fault):
            continue
        for code, words in good_words.items():
            faulty = model.faulty_responses(fault, patterns_for(code))
            for good_word, faulty_bits in zip(words, faulty):
                diff = good_word ^ pack(faulty_bits)
                if diff:
                    diffs.add(diff)
    return diffs


# ----------------------------------------------------------------------
# The oracle
# ----------------------------------------------------------------------
def run_oracle(
    fsm: FSM,
    seed: int = 0,
    config: OracleConfig = OracleConfig(),
    cache: Cache | None = None,
    degraded: bool = False,
) -> OracleReport:
    """Run every differential check on one machine."""
    report = OracleReport(name=fsm.name)
    try:
        _run_checks(fsm, seed, config, cache or NullCache(), degraded, report)
    except Exception as error:  # the pipeline must accept valid machines
        report.add("crash", f"{type(error).__name__}: {error}")
    return report


def _run_checks(
    fsm: FSM,
    seed: int,
    config: OracleConfig,
    cache: Cache,
    degraded: bool,
    report: OracleReport,
) -> None:
    latencies = list(range(1, config.latency + 1))

    # Stage 1: synthesis (same cache key as repro.flow — shared artifacts).
    synthesis, _ = cached_call(
        cache,
        "synthesis",
        fingerprint("synthesis", fsm, "binary", False),
        lambda: synthesize_fsm(fsm),
    )
    model = StuckAtModel(synthesis, max_faults=config.max_faults, seed=seed)
    faults = model.faults()

    # Stage 2: tables, both semantics.
    tables: dict[str, dict[int, DetectabilityTable]] = {}
    fault_desc = ("stuck-at", True, True, config.max_faults, model.seed)
    for semantics in ("checker", "trajectory"):
        table_config = TableConfig(latency=config.latency, semantics=semantics)
        from repro.flow import _incremental_extract

        tables[semantics], _ = cached_call(
            cache,
            "tables",
            fingerprint(
                "tables", fsm, "binary", False, fault_desc,
                table_config, tuple(latencies),
            ),
            lambda tc=table_config: _incremental_extract(
                cache, fsm, synthesis, model, tc, latencies,
                "binary", False, fault_desc,
            ),
        )

    checker = tables["checker"]
    trajectory = tables["trajectory"]
    report.features.update(
        num_states=fsm.num_states,
        num_inputs=fsm.num_inputs,
        num_outputs=fsm.num_outputs,
        num_bits=synthesis.num_bits,
        num_faults=len(faults),
        rows={str(p): checker[p].num_rows for p in latencies},
        truncated=any(
            checker[p].stats is not None and checker[p].stats.truncated
            for p in latencies
        ),
    )

    # Table cross-checks (skip when the extraction had to subsample).
    if not report.features["truncated"]:
        alphabet, _ = input_alphabet(
            synthesis, TableConfig(latency=config.latency, semantics="checker")
        )
        direct = direct_first_step_diffs(synthesis, model, faults, alphabet)
        extracted = {
            next(iter(options))
            for options in checker[1].option_sets()
            if len(options) == 1
        }
        all_extracted = {
            word for options in checker[1].option_sets() for word in options
        }
        if extracted != direct or all_extracted != direct:
            report.add(
                "table-mismatch",
                f"p=1 checker table has {len(all_extracted)} distinct "
                f"difference words, direct simulation found {len(direct)} "
                f"(symmetric difference {len(all_extracted ^ direct)})",
            )
        if checker[1].option_sets() != trajectory[1].option_sets():
            report.add(
                "table-mismatch",
                "checker and trajectory tables disagree at p=1 "
                "(they can only diverge after the activation step)",
            )

    # Stage 3: solving — greedy, LP+RR, exact — under the (optional)
    # pipeline mutation.  The cross-checks below never run mutated code.
    solve_config = SolveConfig(iterations=config.solve_iterations, seed=seed)
    with apply_mutation(config.mutation):
        greedy_results, _ = cached_call(
            cache,
            "solve",
            _solve_key("fuzz-greedy", config, solve_config, checker, latencies),
            lambda: solve_greedy_for_latencies(checker, solve_config),
        )
        if degraded:
            lp_results = greedy_results
        else:
            lp_results, _ = cached_call(
                cache,
                "solve",
                _solve_key("fuzz-lp", config, solve_config, checker, latencies),
                lambda: solve_for_latencies(checker, solve_config),
            )
    exact_qs: dict[int, int] = {}
    if not degraded and config.mutation == "none":
        exact_qs = _exact_latencies(checker, latencies, config, cache)

    # Solver-order and coverage checks.
    for p in latencies:
        q_greedy = greedy_results[p].q
        q_lp = lp_results[p].q
        if q_lp > q_greedy:
            report.add(
                "solver-order",
                f"p={p}: LP+rounding q={q_lp} exceeds greedy q={q_greedy}",
            )
        if p in exact_qs and exact_qs[p] > q_lp:
            report.add(
                "solver-order",
                f"p={p}: exact q={exact_qs[p]} exceeds LP+rounding q={q_lp} "
                "— the 'exact' solver is not optimal or LP+RR under-covers",
            )
        for label, result in (("greedy", greedy_results[p]), ("lp", lp_results[p])):
            if checker[p].num_rows and not independent_covers(
                checker[p].rows, result.betas
            ):
                report.add(
                    "coverage",
                    f"p={p}: {label} solution {sorted(result.betas)} fails "
                    "the independent GF(2) coverage check",
                )
        if checker[p].num_rows == 0 and (q_lp != 0 or q_greedy != 0):
            report.add(
                "coverage",
                f"p={p}: empty table must need zero parity functions, "
                f"got lp={q_lp} greedy={q_greedy}",
            )
    for label, results in (("greedy", greedy_results), ("lp", lp_results)):
        qs = [results[p].q for p in latencies]
        if any(later > earlier for earlier, later in zip(qs, qs[1:])):
            report.add(
                "solver-order",
                f"{label} q not monotone along latencies: {qs}",
            )

    report.features.update(
        q_greedy={str(p): greedy_results[p].q for p in latencies},
        q_lp={str(p): lp_results[p].q for p in latencies},
        q_exact={str(p): q for p, q in exact_qs.items()},
    )

    # Stage 4: the end-to-end guarantee on the built hardware.  The
    # checker-table guarantee extends to states only the faulty machine
    # reaches, so the predictor must not dc-optimize unreachable codes
    # (the trajectory-gap hardware below keeps the paper's default).
    top = config.latency
    hardware = build_ced_hardware(
        synthesis, lp_results[top].betas, unreachable_dc=False
    )
    bound = verify_bounded_latency(
        synthesis,
        hardware,
        faults,
        latency=top,
        runs_per_fault=config.runs_per_fault,
        run_length=config.run_length,
        max_faults=config.verify_max_faults,
        seed=seed,
    )
    if not bound.clean:
        report.add(
            "bound-violation",
            f"p={top}: {len(bound.violations)} of {bound.num_activated_runs} "
            f"activated runs escaped the bound (first: {bound.violations[0]})",
        )
    if not verify_no_false_alarms(
        synthesis, hardware, num_runs=3, run_length=24, seed=seed
    ):
        report.add("false-alarm", "fault-free machine raised the error flag")
    report.features["activated_runs"] = bound.num_activated_runs

    # Trajectory-gap measurement (a finding, not a failure).
    if config.check_trajectory_gap and not degraded and config.mutation == "none":
        gap_results = solve_for_latencies(trajectory, solve_config)
        gap_hardware = build_ced_hardware(synthesis, gap_results[top].betas)
        gap = verify_bounded_latency(
            synthesis,
            gap_hardware,
            faults,
            latency=top,
            runs_per_fault=config.runs_per_fault,
            run_length=config.run_length,
            max_faults=config.verify_max_faults,
            seed=seed,
        )
        report.features["trajectory_gap"] = len(gap.violations)
        report.features["trajectory_q"] = {
            str(p): gap_results[p].q for p in latencies
        }


def _solve_key(
    kind: str,
    config: OracleConfig,
    solve_config: SolveConfig,
    tables: dict[int, DetectabilityTable],
    latencies: list[int],
) -> str:
    return fingerprint(
        kind,
        config.mutation,
        solve_config,
        [(p, tables[p].num_bits, tables[p].rows) for p in latencies],
    )


def _exact_latencies(
    tables: dict[int, DetectabilityTable],
    latencies: list[int],
    config: OracleConfig,
    cache: Cache,
) -> dict[int, int]:
    from repro.core.exact import exact_minimum_parity

    exact_qs: dict[int, int] = {}
    for p in latencies:
        table = tables[p]
        if (
            table.num_bits > config.exact_max_bits
            or table.num_rows > config.exact_max_rows
        ):
            continue
        try:
            betas, _ = cached_call(
                cache,
                "solve",
                fingerprint(
                    "fuzz-exact", config.exact_node_budget,
                    table.num_bits, table.rows,
                ),
                lambda t=table: exact_minimum_parity(
                    t, node_budget=config.exact_node_budget
                ),
            )
        except RuntimeError:  # node budget exhausted — skip the comparison
            continue
        exact_qs[p] = len(betas)
    return exact_qs
