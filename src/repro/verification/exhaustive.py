"""Exhaustive bounded-latency verification: prove the bound, don't sample it.

The fuzz/fault-injection verifier (:mod:`repro.ced.verify`) samples the
bounded-latency property with random runs.  For bounded machines the
property is a bounded-reachability question we can settle exactly: for
every collapsed stuck-at fault, explore the product of the faulty machine
and the checker from **every** reachable fault-activation point, breadth
first, up to depth ``p``.  Either every length-``p`` continuation detects
— and the per-fault **worst-case detection latency** is the exact level at
which the last undetected frontier empties — or some path survives
undetected and a concrete, replayable **escape witness** (an input
sequence from reset) is extracted.

The search never steps a simulator cycle by cycle.  All per-fault data is
precomputed with the packed uint64 kernel (:mod:`repro.logic.sim`) over
the full ``2**s states x alphabet`` pattern block: the fault-free
transition words, the predictor outputs, and — per fault, via the
cone-restricted :class:`~repro.logic.sim.PackedSimulator` re-sweep — the
faulty words.  From these three matrices, error (``E``), detection
(``D``) and faulty next-state (``NF``) matrices follow by word-parallel
bit algebra, and each BFS level is a numpy gather.

Semantics match :func:`repro.ced.verify.verify_bounded_latency` exactly:

* an *activation* is the first erroneous transition of a run, so
  activation states are those reachable from reset through **error-free**
  faulty transitions (before the first error the faulty machine tracks
  the good one);
* a step *detects* when some parity tree over the checker-visible word
  (registered faulty state + held outputs) disagrees with the predictor's
  output for that (state, input) — the Fig. 3 comparator at ``t+1``;
* the input alphabet is the table-extraction alphabet
  (:func:`repro.core.detectability.input_alphabet`), so exhaustive-mode
  machines (``r <= exhaustive_input_limit``) are proved over the full
  input space and cube-mode machines over the recorded alphabet.

Above a configurable state budget (``2**s * |alphabet|`` patterns) the
engine degrades gracefully to the sampled verifier and the emitted
certificate is marked ``mode: "sampled"``.

Entry points: :func:`exhaustive_check` (synthesis + hardware in, report
out) and :func:`verify_exhaustive` (benchmark/FSM in, cached certificate
dict out — the ``repro-ced verify --exhaustive`` / campaign / service
path).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.ced.hardware import CedHardware
from repro.core.detectability import (
    TableConfig,
    _pack_bits,
    _patterns,
    input_alphabet,
)
from repro.faults.collapse import FaultSelection, select_stuck_at_faults
from repro.faults.model import Fault, is_netlist_fault
from repro.logic.sim import PackedSimulator, evaluate_batch
from repro.logic.synthesis import SynthesisResult
from repro.runtime.trace import current_tracer

#: Default ceiling on the enumerated pattern block (``2**s * |alphabet|``).
#: Every bundled benchmark fits (the largest Table-1 circuits enumerate
#: 64 states x 64 alphabet vectors = 4096 patterns); the budget guards
#: against externally supplied machines with wide state registers.
DEFAULT_STATE_BUDGET = 1 << 16


@dataclass(frozen=True)
class ExhaustiveConfig:
    """Everything one exhaustive verification depends on (picklable)."""

    latency: int = 1
    semantics: str = "checker"
    encoding: str = "binary"
    max_faults: int | None = 800
    multilevel: bool = False
    seed: int = 2004
    #: Degrade to the sampled fuzzer above this many enumerated patterns.
    state_budget: int = DEFAULT_STATE_BUDGET
    #: Escape witnesses extracted per report (the rest are counted only).
    max_witnesses: int = 8

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError("latency must be at least 1")
        if self.state_budget < 1:
            raise ValueError("state_budget must be positive")


@dataclass(frozen=True)
class FaultVerdict:
    """The exact outcome for one fault."""

    fault: str
    #: "proved" — every activation detects within the bound;
    #: "escape" — some length-p continuation stays undetected;
    #: "idle"   — the fault produces no erroneous reachable transition.
    status: str
    #: Exact worst-case detection latency (proved faults only).
    worst_latency: int | None = None
    #: Number of reachable erroneous (state, input) activation points.
    activations: int = 0
    #: Replayable escape trace (escapes only; capped per report).
    witness: dict | None = None
    #: Universe faults this verdict stands for (behavior-equivalence class
    #: size; equivalent faults share the exact same verdict and latency).
    multiplicity: int = 1


@dataclass
class ExhaustiveReport:
    """Everything the exact search established for one design."""

    latency: int
    alphabet: list[int]
    input_mode: str
    num_state_bits: int
    num_patterns: int
    verdicts: list[FaultVerdict] = field(default_factory=list)
    #: Good-machine reachable state codes (the certificate's inventory).
    reachable_good: list[int] = field(default_factory=list)
    #: Union over faults of error-free-reachable (activation) states.
    activation_states: list[int] = field(default_factory=list)

    @property
    def escapes(self) -> list[FaultVerdict]:
        return [v for v in self.verdicts if v.status == "escape"]

    @property
    def clean(self) -> bool:
        return not self.escapes

    @property
    def worst_latency(self) -> int | None:
        """Exact worst-case detection latency over all proved faults."""
        proved = [
            v.worst_latency for v in self.verdicts if v.status == "proved"
        ]
        return max(proved) if proved else None

    def histogram(self) -> dict[int, int]:
        """Universe faults per exact worst-case latency (proved only).

        Each verdict contributes its class multiplicity, so the histogram
        counts the full fault universe even though only one representative
        per behavior-equivalence class was searched.  With unit
        multiplicities (no class collapsing) this is a plain verdict count.
        """
        counts: dict[int, int] = {}
        for verdict in self.verdicts:
            if verdict.status == "proved":
                assert verdict.worst_latency is not None
                counts[verdict.worst_latency] = (
                    counts.get(verdict.worst_latency, 0) + verdict.multiplicity
                )
        return counts

    def counts(self) -> dict[str, int]:
        """Verdict counts over the checked representatives."""
        return {
            "checked": len(self.verdicts),
            "idle": sum(1 for v in self.verdicts if v.status == "idle"),
            "proved": sum(1 for v in self.verdicts if v.status == "proved"),
            "escaped": len(self.escapes),
        }

    def universe_counts(self) -> dict[str, int]:
        """Multiplicity-expanded verdict counts (full-universe faithful)."""
        totals = {"checked": 0, "idle": 0, "proved": 0, "escaped": 0}
        key = {"idle": "idle", "proved": "proved", "escape": "escaped"}
        for verdict in self.verdicts:
            totals["checked"] += verdict.multiplicity
            totals[key[verdict.status]] += verdict.multiplicity
        return totals


# ----------------------------------------------------------------------
# The exact engine
# ----------------------------------------------------------------------
def exhaustive_check(
    synthesis: SynthesisResult,
    hardware: CedHardware,
    faults: Sequence[Fault],
    latency: int,
    alphabet: np.ndarray | None = None,
    input_mode: str | None = None,
    max_witnesses: int = 8,
    multiplicities: "dict[str, int] | None" = None,
) -> ExhaustiveReport:
    """Exact bounded-latency check of built CED hardware.

    Only netlist stuck-at faults (payload ``(node, value)``) participate;
    other fault kinds are skipped, matching the sampled verifier.
    ``multiplicities`` (fault name → behavior-equivalence class size)
    weights each verdict so report histograms and universe counts stay
    faithful to the full fault universe when ``faults`` holds one
    representative per class.
    """
    if latency < 1:
        raise ValueError("latency must be at least 1")
    if alphabet is None:
        alphabet, input_mode = input_alphabet(
            synthesis, TableConfig(latency=latency)
        )
    alphabet = np.asarray(alphabet, dtype=np.int64)
    s = synthesis.num_state_bits
    num_states = 1 << s
    num_inputs = int(alphabet.shape[0])
    state_mask = np.int64(num_states - 1)
    reset = synthesis.reset_code

    # One pattern block covers every (state code, alphabet input) pair —
    # the faulty machine may wander into codes the good machine never
    # uses, so all 2**s codes are enumerated.  Row = code * |A| + input.
    patterns = _patterns(synthesis, list(range(num_states)), alphabet)
    good_words = _pack_bits(
        evaluate_batch(synthesis.netlist, patterns)
    ).reshape(num_states, num_inputs)
    betas = hardware.betas
    if betas:
        predicted = _pack_bits(
            evaluate_batch(hardware.predictor.netlist, patterns)
        ).reshape(num_states, num_inputs)
    else:
        predicted = np.zeros((num_states, num_inputs), dtype=np.int64)

    simulator = PackedSimulator(synthesis.netlist, patterns)
    good_next = (good_words & state_mask).astype(np.int64)
    no_error = np.zeros((num_states, num_inputs), dtype=bool)
    good_reach, _ = _restricted_reachable(good_next, no_error, reset)

    tracer = current_tracer()
    report = ExhaustiveReport(
        latency=latency,
        alphabet=[int(a) for a in alphabet],
        input_mode=input_mode or "exhaustive",
        num_state_bits=s,
        num_patterns=int(patterns.shape[0]),
        reachable_good=[int(c) for c in np.nonzero(good_reach)[0]],
    )
    activation_union = np.zeros(num_states, dtype=bool)
    witnesses_left = max_witnesses

    with tracer.span(
        "exhaustive.search",
        circuit=synthesis.fsm.name,
        latency=latency,
        faults=len(faults),
        patterns=report.num_patterns,
        alphabet=num_inputs,
    ):
        for fault in faults:
            if not is_netlist_fault(fault):
                continue
            verdict, act_reach = _check_fault(
                fault=fault,
                simulator=simulator,
                good_words=good_words,
                predicted=predicted,
                betas=betas,
                state_mask=state_mask,
                reset=reset,
                latency=latency,
                alphabet=alphabet,
                shape=(num_states, num_inputs),
                want_witness=witnesses_left > 0,
            )
            if multiplicities is not None:
                verdict = dataclasses.replace(
                    verdict,
                    multiplicity=multiplicities.get(verdict.fault, 1),
                )
            if verdict.witness is not None:
                witnesses_left -= 1
            activation_union |= act_reach
            report.verdicts.append(verdict)
            tracer.event(
                "exhaustive.fault",
                fault=verdict.fault,
                status=verdict.status,
                worst_latency=verdict.worst_latency,
                activations=verdict.activations,
                multiplicity=verdict.multiplicity,
            )
    report.activation_states = [
        int(c) for c in np.nonzero(activation_union)[0]
    ]
    return report


def _check_fault(
    fault: Fault,
    simulator: PackedSimulator,
    good_words: np.ndarray,
    predicted: np.ndarray,
    betas: list[int],
    state_mask: np.int64,
    reset: int,
    latency: int,
    alphabet: np.ndarray,
    shape: tuple[int, int],
    want_witness: bool,
) -> tuple[FaultVerdict, np.ndarray]:
    """Exact verdict for one fault plus its activation-reachable mask."""
    num_states, num_inputs = shape
    node, value = fault.payload  # type: ignore[misc]
    faulty_words = _pack_bits(
        simulator.faulty_outputs((int(node), int(value)))
    ).reshape(num_states, num_inputs)
    erroneous = faulty_words != good_words
    if betas:
        detected = _parity_words(faulty_words, betas) != predicted
    else:
        detected = np.zeros(shape, dtype=bool)
    next_state = (faulty_words & state_mask).astype(np.int64)

    # Activation points: reachable through error-free faulty transitions
    # (before the first error, the faulty machine tracks the good one),
    # then an erroneous step.
    act_reach, parents = _restricted_reachable(next_state, erroneous, reset)
    activations = act_reach[:, None] & erroneous
    num_activations = int(activations.sum())
    if num_activations == 0:
        return FaultVerdict(fault.name, "idle"), act_reach

    # Level 1 is the activation transition itself; F_k collects faulty
    # states still undetected after k steps.  The bound is proved at the
    # first empty frontier; a non-empty F_p is an escape.
    undetected_act = activations & ~detected
    if not undetected_act.any():
        return (
            FaultVerdict(fault.name, "proved", 1, num_activations),
            act_reach,
        )
    levels = [np.unique(next_state[undetected_act])]
    worst: int | None = None
    for step in range(2, latency + 1):
        frontier = levels[-1]
        survive = ~detected[frontier]  # (|F|, A)
        if not survive.any():
            worst = step
            break
        levels.append(np.unique(next_state[frontier][survive]))
    if worst is not None:
        return (
            FaultVerdict(fault.name, "proved", worst, num_activations),
            act_reach,
        )
    witness = None
    if want_witness:
        witness = _escape_witness(
            fault_name=fault.name,
            levels=levels,
            next_state=next_state,
            detected=detected,
            undetected_act=undetected_act,
            parents=parents,
            alphabet=alphabet,
            reset=reset,
            latency=latency,
        )
    return (
        FaultVerdict(
            fault.name, "escape", None, num_activations, witness
        ),
        act_reach,
    )


def _parity_words(words: np.ndarray, betas: Sequence[int]) -> np.ndarray:
    """Per-beta parities of packed words, packed into one int per cell."""
    out = np.zeros_like(words)
    one = np.int64(1)
    for index, beta in enumerate(betas):
        masked = words & np.int64(beta)
        for shift in (32, 16, 8, 4, 2, 1):
            masked = masked ^ (masked >> np.int64(shift))
        out |= (masked & one) << np.int64(index)
    return out


def _restricted_reachable(
    next_state: np.ndarray, blocked: np.ndarray, reset: int
) -> tuple[np.ndarray, dict[int, tuple[int, int] | None]]:
    """BFS from reset over non-blocked edges; mask + parent pointers.

    Iteration order (states in discovery order, inputs ascending) is
    deterministic, so the recorded parents — and every witness built from
    them — are stable across runs.
    """
    reach = np.zeros(next_state.shape[0], dtype=bool)
    reach[reset] = True
    parents: dict[int, tuple[int, int] | None] = {reset: None}
    frontier = [reset]
    while frontier:
        upcoming: list[int] = []
        for code in frontier:
            allowed = np.nonzero(~blocked[code])[0]
            for column in allowed.tolist():
                successor = int(next_state[code, column])
                if not reach[successor]:
                    reach[successor] = True
                    parents[successor] = (code, column)
                    upcoming.append(successor)
        frontier = upcoming
    return reach, parents


def _escape_witness(
    fault_name: str,
    levels: list[np.ndarray],
    next_state: np.ndarray,
    detected: np.ndarray,
    undetected_act: np.ndarray,
    parents: dict[int, tuple[int, int] | None],
    alphabet: np.ndarray,
    reset: int,
    latency: int,
) -> dict:
    """A concrete input sequence from reset that evades detection.

    Walks the stored frontiers backwards (smallest state / input at every
    choice, so the witness is deterministic), then prepends the error-free
    prefix recorded by the activation BFS.
    """
    current = int(levels[-1].min())
    continuation: list[int] = []
    for level in range(len(levels) - 1, 0, -1):
        source = None
        for code in levels[level - 1].tolist():
            columns = np.nonzero(
                ~detected[code] & (next_state[code] == current)
            )[0]
            if columns.size:
                source = (int(code), int(columns[0]))
                break
        assert source is not None, "broken frontier chain"
        continuation.append(int(alphabet[source[1]]))
        current = source[0]
    continuation.reverse()

    activation = None
    act_states, act_columns = np.nonzero(undetected_act)
    for code, column in zip(act_states.tolist(), act_columns.tolist()):
        if int(next_state[code, column]) == current:
            activation = (int(code), int(column))
            break
    assert activation is not None, "activation lost"

    prefix: list[int] = []
    cursor: int | None = activation[0]
    while parents[cursor] is not None:
        cursor, column = parents[cursor]  # type: ignore[misc]
        prefix.append(int(alphabet[column]))
    prefix.reverse()
    inputs = prefix + [int(alphabet[activation[1]])] + continuation
    return {
        "fault": fault_name,
        "inputs": inputs,
        "activation_cycle": len(prefix),
        "activation_state": activation[0],
        "latency": latency,
    }


def replay_witness(
    synthesis: SynthesisResult,
    hardware: CedHardware,
    fault: tuple[int, int],
    witness: dict,
) -> bool:
    """True iff the witness reproduces an escape on the cycle simulator.

    The replay is the sampled verifier's exact acceptance test: the
    witness's activation cycle must be the run's first erroneous
    transition and no step of the ``latency``-wide window may detect.
    """
    from repro.ced.checker import CedMachine

    machine = CedMachine(synthesis, hardware)
    trace = machine.run(witness["inputs"], fault=fault)
    activation = next(
        (step.cycle for step in trace if step.erroneous), None
    )
    if activation != witness["activation_cycle"]:
        return False
    window = trace[activation : activation + witness["latency"]]
    return not any(step.detected for step in window)


# ----------------------------------------------------------------------
# Benchmark-level driver (cache / campaign / service / CLI entry point)
# ----------------------------------------------------------------------
def collapsed_fault_list(
    synthesis: SynthesisResult, max_faults: int | None, seed: int
) -> tuple[int, int, list[Fault]]:
    """(universe size, structurally-collapsed size, checked list).

    Thin compatibility wrapper over
    :func:`repro.faults.collapse.select_stuck_at_faults` — the one shared
    selection recipe :meth:`repro.faults.model.StuckAtModel.faults` uses —
    so the exhaustive engine and the sampled verifier can never drift
    apart on the same seed.  Callers needing class multiplicities should
    use :func:`~repro.faults.collapse.select_stuck_at_faults` directly.
    """
    selection = select_stuck_at_faults(
        synthesis, max_faults=max_faults, seed=seed
    )
    return selection.universe, selection.structural, list(selection.checked)


def verify_exhaustive(
    fsm,
    config: ExhaustiveConfig = ExhaustiveConfig(),
    cache=None,
    recorder=None,
    degraded: bool = False,
) -> dict:
    """Design + exactly verify one machine; return the certificate dict.

    The certificate is stored in the artifact cache's ``certificate``
    stage; cached servings are byte-identical to fresh computations (the
    certificate contains no wall-clock data).
    """
    from repro.core.search import SolveConfig
    from repro.fsm.benchmarks import load_benchmark
    from repro.runtime.cache import NullCache, cached_call, fingerprint
    from repro.runtime.metrics import MetricsRecorder

    if isinstance(fsm, str):
        fsm = load_benchmark(fsm)
    if cache is None:
        cache = NullCache()
    if recorder is None:
        recorder = MetricsRecorder()
    with recorder.stage("certificate") as stage:
        certificate, stage.cached = cached_call(
            cache,
            "certificate",
            fingerprint("verify-exhaustive", fsm, config, degraded),
            lambda: _compute_certificate(
                fsm, config, cache, recorder, degraded, SolveConfig
            ),
        )
    return certificate


def _compute_certificate(
    fsm, config: ExhaustiveConfig, cache, recorder, degraded, solve_config_cls
) -> dict:
    from repro.flow import design_ced
    from repro.verification.certificate import (
        build_exhaustive_certificate,
        build_sampled_certificate,
    )

    design = design_ced(
        fsm,
        latency=config.latency,
        semantics=config.semantics,
        encoding=config.encoding,
        max_faults=config.max_faults,
        solve_config=solve_config_cls(seed=config.seed),
        multilevel=config.multilevel,
        cache=cache,
        recorder=recorder,
        degraded=degraded,
    )
    synthesis = design.synthesis
    selection: FaultSelection = select_stuck_at_faults(
        synthesis, max_faults=config.max_faults, seed=config.seed
    )
    faults = list(selection.checked)
    alphabet, input_mode = input_alphabet(
        synthesis, TableConfig(latency=config.latency)
    )
    num_patterns = (1 << synthesis.num_state_bits) * int(alphabet.shape[0])
    tracer = current_tracer()
    if num_patterns > config.state_budget:
        from repro.ced.verify import verify_bounded_latency

        with tracer.span(
            "exhaustive.fallback",
            circuit=synthesis.fsm.name,
            patterns=num_patterns,
            budget=config.state_budget,
        ):
            sampled = verify_bounded_latency(
                synthesis,
                design.hardware,
                faults,
                latency=config.latency,
                seed=config.seed,
            )
        return build_sampled_certificate(
            fsm_name=synthesis.fsm.name,
            config=config,
            design=design,
            report=sampled,
            selection=selection,
            num_patterns=num_patterns,
            input_mode=input_mode,
            alphabet_size=int(alphabet.shape[0]),
        )
    report = exhaustive_check(
        synthesis,
        design.hardware,
        faults,
        config.latency,
        alphabet=alphabet,
        input_mode=input_mode,
        max_witnesses=config.max_witnesses,
        multiplicities=selection.multiplicities(),
    )
    return build_exhaustive_certificate(
        fsm_name=synthesis.fsm.name,
        config=config,
        design=design,
        report=report,
        selection=selection,
    )
