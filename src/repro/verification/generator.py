"""Fuzz-oriented FSM generation and mutation.

:mod:`repro.fsm.generate` produces *plausible* controllers (the MCNC
signature substitutes).  The fuzzer needs the opposite bias: machines at
the edges of the input space where table extraction, solving and hardware
construction are most likely to disagree.  Every machine built here is a
valid deterministic :class:`~repro.fsm.machine.FSM` (per-state input cubes
are disjoint by construction), so the whole pipeline must accept it.

Shapes (``FUZZ_SHAPES``):

* ``tiny``        — one or two states, everything a (near-)self-loop;
* ``unreachable`` — a reachable core plus states only reachable from each
  other, never from reset (the extractor must ignore them, the encoder
  must still encode them);
* ``degenerate``  — outputs all-constant or all-don't-care (empty or
  trivial on-sets downstream);
* ``dense``       — completely specified, every input combination split
  out (maximal alphabet pressure);
* ``sparse``      — a bare spanning tree of transitions (most of the input
  space unspecified, maximal don't-care freedom);
* ``generic``     — an unconstrained random controller.

Mutations (:func:`mutate_fsm`) preserve determinism by never touching the
cube structure of a state: they redirect destinations, rewrite output
characters, drop transitions, or clone a state.  The coverage-guided
fuzzer applies them to machines that reached new behaviour signatures.
"""

from __future__ import annotations

import numpy as np

from repro.fsm.machine import FSM, Transition

FUZZ_SHAPES = (
    "tiny",
    "unreachable",
    "degenerate",
    "dense",
    "sparse",
    "generic",
)

#: Size envelope of fuzzed machines.  Small on purpose: the differential
#: oracle runs an exact solver and a fault-injection campaign per machine,
#: and small machines shrink to readable reproducers.
_MAX_INPUTS = 3
_MAX_STATES = 7
_MAX_OUTPUTS = 3


def random_fsm(
    rng: np.random.Generator, name: str, shape: str | None = None
) -> FSM:
    """A random valid machine of the given (or randomly drawn) shape."""
    if shape is None:
        shape = FUZZ_SHAPES[int(rng.integers(len(FUZZ_SHAPES)))]
    if shape not in FUZZ_SHAPES:
        raise ValueError(f"shape must be one of {FUZZ_SHAPES}")
    builder = {
        "tiny": _tiny,
        "unreachable": _unreachable,
        "degenerate": _degenerate,
        "dense": _dense,
        "sparse": _sparse,
        "generic": _generic,
    }[shape]
    return builder(rng, name)


# ----------------------------------------------------------------------
# Construction helpers
# ----------------------------------------------------------------------
def _cube_blocks(
    rng: np.random.Generator, num_inputs: int, depth: int
) -> list[str]:
    """A disjoint family of 2**depth cubes splitting ``depth`` variables."""
    depth = min(depth, num_inputs)
    split_vars = sorted(
        rng.choice(num_inputs, size=depth, replace=False).tolist()
    ) if depth else []
    blocks = []
    for assignment in range(1 << depth):
        pattern = ["-"] * num_inputs
        for position, var in enumerate(split_vars):
            pattern[var] = "1" if (assignment >> position) & 1 else "0"
        blocks.append("".join(pattern))
    return blocks


def _random_output(
    rng: np.random.Generator, num_outputs: int, dc_rate: float = 0.1
) -> str:
    chars = []
    for _ in range(num_outputs):
        roll = rng.random()
        if roll < dc_rate:
            chars.append("-")
        else:
            chars.append("1" if rng.random() < 0.5 else "0")
    return "".join(chars)


def _assemble(
    name: str,
    num_inputs: int,
    num_outputs: int,
    states: list[str],
    rows: list[Transition],
) -> FSM:
    return FSM(
        name=name,
        num_inputs=num_inputs,
        num_outputs=num_outputs,
        states=states,
        transitions=rows,
        reset_state=states[0],
    )


def _core_machine(
    rng: np.random.Generator,
    name: str,
    num_inputs: int,
    num_states: int,
    num_outputs: int,
    cubes_depth: int,
    keep_fraction: float,
    self_loop_rate: float,
    output_dc_rate: float,
) -> FSM:
    """A reachable random machine; the shared skeleton of most shapes."""
    states = [f"s{idx}" for idx in range(num_states)]
    rows: list[Transition] = []
    slots: list[tuple[int, str]] = []
    for state_idx in range(num_states):
        blocks = _cube_blocks(rng, num_inputs, cubes_depth)
        keep = max(1, round(len(blocks) * keep_fraction))
        chosen = rng.choice(len(blocks), size=keep, replace=False)
        for block_idx in sorted(chosen.tolist()):
            slots.append((state_idx, blocks[block_idx]))

    # Spanning reachability first: state i>0 gets an incoming edge from a
    # free slot of some earlier state.
    destinations: dict[int, int] = {}
    slots_by_state: dict[int, list[int]] = {}
    for slot_idx, (state_idx, _) in enumerate(slots):
        slots_by_state.setdefault(state_idx, []).append(slot_idx)
    for target in range(1, num_states):
        candidates = [
            slot_idx
            for source in range(target)
            for slot_idx in slots_by_state.get(source, [])
            if slot_idx not in destinations
        ]
        if candidates:
            destinations[int(rng.choice(candidates))] = target
    for slot_idx, (state_idx, _) in enumerate(slots):
        if slot_idx in destinations:
            continue
        if rng.random() < self_loop_rate:
            destinations[slot_idx] = state_idx
        else:
            destinations[slot_idx] = int(rng.integers(num_states))

    for slot_idx, (state_idx, cube) in enumerate(slots):
        rows.append(
            Transition(
                input_cube=cube,
                src=states[state_idx],
                dst=states[destinations[slot_idx]],
                output=_random_output(rng, num_outputs, output_dc_rate),
            )
        )
    return _assemble(name, num_inputs, num_outputs, states, rows)


# ----------------------------------------------------------------------
# Shapes
# ----------------------------------------------------------------------
def _tiny(rng: np.random.Generator, name: str) -> FSM:
    num_inputs = int(rng.integers(1, _MAX_INPUTS + 1))
    num_outputs = int(rng.integers(1, _MAX_OUTPUTS + 1))
    num_states = int(rng.integers(1, 3))
    states = [f"s{idx}" for idx in range(num_states)]
    rows = []
    for state_idx in range(num_states):
        for cube in _cube_blocks(rng, num_inputs, 1):
            # Mostly self-loops; occasionally hop to the other state.
            dst = state_idx
            if num_states > 1 and rng.random() < 0.3:
                dst = 1 - state_idx
            rows.append(
                Transition(cube, states[state_idx], states[dst],
                           _random_output(rng, num_outputs))
            )
    return _assemble(name, num_inputs, num_outputs, states, rows)


def _unreachable(rng: np.random.Generator, name: str) -> FSM:
    core = _core_machine(
        rng, name,
        num_inputs=int(rng.integers(1, _MAX_INPUTS + 1)),
        num_states=int(rng.integers(2, 5)),
        num_outputs=int(rng.integers(1, _MAX_OUTPUTS + 1)),
        cubes_depth=int(rng.integers(1, 3)),
        keep_fraction=1.0,
        self_loop_rate=0.3,
        output_dc_rate=0.1,
    )
    # An island of 1-2 states transitioning only among themselves.
    island = [f"u{idx}" for idx in range(int(rng.integers(1, 3)))]
    states = list(core.states) + island
    rows = list(core.transitions)
    for island_idx, state in enumerate(island):
        for cube in _cube_blocks(rng, core.num_inputs, 1):
            dst = island[int(rng.integers(len(island)))]
            rows.append(
                Transition(cube, state, dst,
                           _random_output(rng, core.num_outputs))
            )
    return _assemble(name, core.num_inputs, core.num_outputs, states, rows)


def _degenerate(rng: np.random.Generator, name: str) -> FSM:
    core = _core_machine(
        rng, name,
        num_inputs=int(rng.integers(1, _MAX_INPUTS + 1)),
        num_states=int(rng.integers(2, _MAX_STATES + 1)),
        num_outputs=int(rng.integers(1, _MAX_OUTPUTS + 1)),
        cubes_depth=int(rng.integers(1, 3)),
        keep_fraction=1.0,
        self_loop_rate=0.25,
        output_dc_rate=0.0,
    )
    mode = rng.random()
    if mode < 0.4:
        fixed = "-" * core.num_outputs  # all outputs unspecified
    elif mode < 0.8:
        fixed = ("1" if rng.random() < 0.5 else "0") * core.num_outputs
    else:
        fixed = None  # keep outputs, degenerate the transition structure
    rows = []
    for t in core.transitions:
        output = fixed if fixed is not None else t.output
        dst = core.states[0] if fixed is None else t.dst  # funnel to reset
        rows.append(Transition(t.input_cube, t.src, dst, output))
    return _assemble(
        name, core.num_inputs, core.num_outputs, list(core.states), rows
    )


def _dense(rng: np.random.Generator, name: str) -> FSM:
    num_inputs = int(rng.integers(1, _MAX_INPUTS + 1))
    return _core_machine(
        rng, name,
        num_inputs=num_inputs,
        num_states=int(rng.integers(2, 6)),
        num_outputs=int(rng.integers(1, _MAX_OUTPUTS + 1)),
        cubes_depth=num_inputs,  # every minterm its own transition
        keep_fraction=1.0,
        self_loop_rate=0.15,
        output_dc_rate=0.05,
    )


def _sparse(rng: np.random.Generator, name: str) -> FSM:
    return _core_machine(
        rng, name,
        num_inputs=int(rng.integers(2, _MAX_INPUTS + 1)),
        num_states=int(rng.integers(3, _MAX_STATES + 1)),
        num_outputs=int(rng.integers(1, _MAX_OUTPUTS + 1)),
        cubes_depth=2,
        keep_fraction=0.3,  # most of the input space unspecified
        self_loop_rate=0.2,
        output_dc_rate=0.3,
    )


def _generic(rng: np.random.Generator, name: str) -> FSM:
    return _core_machine(
        rng, name,
        num_inputs=int(rng.integers(1, _MAX_INPUTS + 1)),
        num_states=int(rng.integers(2, _MAX_STATES + 1)),
        num_outputs=int(rng.integers(1, _MAX_OUTPUTS + 1)),
        cubes_depth=int(rng.integers(1, 3)),
        keep_fraction=float(rng.uniform(0.5, 1.0)),
        self_loop_rate=float(rng.uniform(0.0, 0.7)),
        output_dc_rate=float(rng.uniform(0.0, 0.3)),
    )


# ----------------------------------------------------------------------
# Mutation
# ----------------------------------------------------------------------
def mutate_fsm(fsm: FSM, rng: np.random.Generator, name: str) -> FSM:
    """A determinism-preserving random mutation of ``fsm``.

    Input cubes are never modified, so per-state disjointness (and hence
    validity) is preserved by construction.
    """
    mutators = [_redirect, _rewrite_output, _drop_transition, _clone_state]
    for _ in range(8):  # a mutator may be a no-op on this machine; retry
        mutator = mutators[int(rng.integers(len(mutators)))]
        mutated = mutator(fsm, rng, name)
        if mutated is not None:
            return mutated
    return fsm.renamed(name)


def _redirect(fsm: FSM, rng: np.random.Generator, name: str) -> FSM | None:
    if not fsm.transitions or len(fsm.states) < 2:
        return None
    rows = list(fsm.transitions)
    index = int(rng.integers(len(rows)))
    target = fsm.states[int(rng.integers(len(fsm.states)))]
    if target == rows[index].dst:
        return None
    rows[index] = Transition(
        rows[index].input_cube, rows[index].src, target, rows[index].output
    )
    return _assemble(name, fsm.num_inputs, fsm.num_outputs,
                     list(fsm.states), rows)


def _rewrite_output(
    fsm: FSM, rng: np.random.Generator, name: str
) -> FSM | None:
    if not fsm.transitions:
        return None
    rows = list(fsm.transitions)
    index = int(rng.integers(len(rows)))
    position = int(rng.integers(fsm.num_outputs))
    current = rows[index].output[position]
    replacement = "01-".replace(current, "")[int(rng.integers(2))]
    output = (
        rows[index].output[:position]
        + replacement
        + rows[index].output[position + 1:]
    )
    rows[index] = Transition(
        rows[index].input_cube, rows[index].src, rows[index].dst, output
    )
    return _assemble(name, fsm.num_inputs, fsm.num_outputs,
                     list(fsm.states), rows)


def _drop_transition(
    fsm: FSM, rng: np.random.Generator, name: str
) -> FSM | None:
    if len(fsm.transitions) < 2:
        return None
    rows = list(fsm.transitions)
    rows.pop(int(rng.integers(len(rows))))
    return _assemble(name, fsm.num_inputs, fsm.num_outputs,
                     list(fsm.states), rows)


def _clone_state(
    fsm: FSM, rng: np.random.Generator, name: str
) -> FSM | None:
    if len(fsm.states) >= _MAX_STATES + 2 or not fsm.transitions:
        return None
    donor = fsm.states[int(rng.integers(len(fsm.states)))]
    donor_rows = [t for t in fsm.transitions if t.src == donor]
    if not donor_rows:
        return None
    clone = f"c{len(fsm.states)}"
    rows = list(fsm.transitions)
    # Redirect one random incoming transition to the clone, then give the
    # clone the donor's outgoing cube structure.
    incoming = [i for i, t in enumerate(rows) if t.dst == donor]
    if not incoming:
        return None
    index = incoming[int(rng.integers(len(incoming)))]
    rows[index] = Transition(
        rows[index].input_cube, rows[index].src, clone, rows[index].output
    )
    for t in donor_rows:
        rows.append(Transition(t.input_cube, clone, t.dst, t.output))
    return _assemble(name, fsm.num_inputs, fsm.num_outputs,
                     list(fsm.states) + [clone], rows)
