"""Reproduction of the paper's Table 1.

For every MCNC-signature benchmark: the original machine's gate count and
mapped cost, then — for each latency bound p — the minimum number of parity
trees found by Algorithm 1 and the gate count / cost of the complete CED
circuitry (parity trees + predictor + hold registers + comparator).

Run ``python -m repro table1`` or the pytest-benchmark wrapper
``benchmarks/test_table1.py``.  Absolute numbers differ from the paper's
(different synthesis flow, cell library and benchmark substitution — see
DESIGN.md §4); the comparisons the paper draws from the table are what is
reproduced, and EXPERIMENTS.md records both side by side.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ced.duplication import duplication_stats
from repro.core.detectability import TableConfig
from repro.core.search import SolveConfig
from repro.flow import design_ced_sweep
from repro.fsm.benchmarks import TABLE1_CIRCUITS, load_benchmark
from repro.util.tables import format_table


@dataclass(frozen=True)
class Table1Config:
    """Parameters of a Table-1 run."""

    latencies: tuple[int, ...] = (1, 2, 3)
    semantics: str = "trajectory"  # the paper-faithful table construction
    encoding: str = "binary"
    max_faults: int | None = 800
    seed: int = 2004
    #: Apply the algebraic multilevel pass (closest to the paper's SIS flow).
    multilevel: bool = True
    solve: SolveConfig = field(default_factory=SolveConfig)


@dataclass
class LatencyEntry:
    """One latency column group of Table 1."""

    latency: int
    num_trees: int
    gates: int
    cost: float


@dataclass
class Table1Row:
    """One circuit row of Table 1."""

    name: str
    inputs: int
    state_bits: int
    outputs: int
    gates: int
    cost: float
    duplication_functions: int
    duplication_cost: float
    entries: dict[int, LatencyEntry]

    @property
    def observable_bits(self) -> int:
        return self.duplication_functions


@dataclass
class Table1Result:
    """All rows plus the configuration that produced them."""

    config: Table1Config
    rows: list[Table1Row]

    def row(self, name: str) -> Table1Row:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)


def run_circuit(
    name: str,
    config: Table1Config = Table1Config(),
    cache=None,
    recorder=None,
    degraded: bool = False,
) -> Table1Row:
    """Run the full flow for one circuit and produce its table row.

    ``cache``/``recorder``/``degraded`` are the campaign runtime's hooks
    (see :mod:`repro.runtime`); all default to off and do not change the
    produced row.
    """
    fsm = load_benchmark(name, seed=config.seed)
    designs = design_ced_sweep(
        fsm,
        latencies=list(config.latencies),
        semantics=config.semantics,
        encoding=config.encoding,
        max_faults=config.max_faults,
        table_config=TableConfig(
            latency=max(config.latencies),
            semantics=config.semantics,
            seed=config.seed,
        ),
        solve_config=config.solve,
        multilevel=config.multilevel,
        cache=cache,
        recorder=recorder,
        degraded=degraded,
    )
    synthesis = next(iter(designs.values())).synthesis
    duplication = duplication_stats(synthesis)
    entries = {
        latency: LatencyEntry(
            latency=latency,
            num_trees=design.num_parity_bits,
            gates=design.gates,
            cost=design.cost,
        )
        for latency, design in designs.items()
    }
    return Table1Row(
        name=name,
        inputs=fsm.num_inputs,
        state_bits=synthesis.num_state_bits,
        outputs=fsm.num_outputs,
        gates=synthesis.stats.gates,
        cost=synthesis.stats.cost,
        duplication_functions=duplication.num_functions,
        duplication_cost=duplication.stats.cost,
        entries=entries,
    )


def run_table1(
    circuits: tuple[str, ...] = TABLE1_CIRCUITS,
    config: Table1Config = Table1Config(),
    options=None,
    echo=None,
) -> Table1Result:
    """Run the flow over all requested circuits.

    With ``options`` (a :class:`repro.runtime.CampaignOptions`) the rows
    are produced by the campaign runtime — in parallel across circuits,
    cache-backed, with per-job retry/fallback and a JSON run manifest —
    and are bit-identical to the serial path (each row is a pure function
    of ``(circuit, config)``).  ``echo`` receives per-job progress lines.
    """
    if options is None:
        rows = [run_circuit(name, config) for name in circuits]
        return Table1Result(config=config, rows=rows)

    from repro.runtime.campaign import run_campaign, table1_jobs

    run = run_campaign(table1_jobs(circuits, config), options, echo=echo)
    if run.failed:
        names = ", ".join(report.name for report in run.failed)
        errors = "; ".join(report.error or "?" for report in run.failed)
        raise RuntimeError(f"table1 campaign failed for {names}: {errors}")
    rows = [run.values[name] for name in circuits]
    return Table1Result(config=config, rows=rows)


def format_table1(result: Table1Result) -> str:
    """Render the result in the paper's Table 1 layout."""
    headers = ["Circuit", "In", "St", "Out", "Gates", "Cost"]
    for latency in result.config.latencies:
        headers += [f"p{latency}:Trees", f"p{latency}:Gates", f"p{latency}:Cost"]
    rows = []
    for row in result.rows:
        cells: list[object] = [
            row.name,
            row.inputs,
            row.state_bits,
            row.outputs,
            row.gates,
            row.cost,
        ]
        for latency in result.config.latencies:
            entry = row.entries[latency]
            cells += [entry.num_trees, entry.gates, entry.cost]
        rows.append(cells)
    title = (
        "Table 1 — CED with bounded latency on MCNC-signature benchmarks "
        f"(semantics={result.config.semantics})"
    )
    return format_table(headers, rows, title=title)
