"""The §2 latency-saturation curve.

The paper argues (without plotting it) that the overhead reduction from
added latency *saturates*: once every faulty machine's enumeration has
wrapped a loop, more latency adds no detection freedom, and the saturation
point is bounded by the longest shortest-loop over the faulty machines.
This module sweeps the latency bound and reports (q, CED cost) per p,
together with the :func:`repro.core.latency.max_useful_latency` prediction
— the series behind ``benchmarks/test_fig_latency_saturation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.detectability import TableConfig
from repro.core.latency import max_useful_latency
from repro.core.search import SolveConfig
from repro.faults.model import StuckAtModel
from repro.flow import design_ced_sweep
from repro.fsm.benchmarks import load_benchmark
from repro.fsm.machine import FSM
from repro.util.tables import format_table


@dataclass(frozen=True)
class SaturationPoint:
    """One latency step of the sweep."""

    latency: int
    num_trees: int
    gates: int
    cost: float


@dataclass
class SaturationCurve:
    """Full sweep plus the predicted saturation bound."""

    name: str
    semantics: str
    points: list[SaturationPoint]
    predicted_max_useful_latency: int

    def format(self) -> str:
        rows = [
            [point.latency, point.num_trees, point.gates, point.cost]
            for point in self.points
        ]
        title = (
            f"Latency saturation for {self.name} (semantics={self.semantics}; "
            f"predicted saturation ≤ p={self.predicted_max_useful_latency})"
        )
        return format_table(["p", "Trees", "Gates", "Cost"], rows, title=title)


def latency_saturation_curve(
    fsm: FSM | str,
    max_latency: int = 4,
    semantics: str = "trajectory",
    max_faults: int | None = 400,
    solve_config: SolveConfig = SolveConfig(),
    seed: int = 2004,
    cache=None,
    recorder=None,
    degraded: bool = False,
) -> SaturationCurve:
    """Sweep the latency bound and record q / gates / cost per step.

    ``cache``/``recorder``/``degraded`` are the campaign runtime's hooks
    (see :mod:`repro.runtime`); they default to off and do not change the
    produced curve.
    """
    if isinstance(fsm, str):
        fsm = load_benchmark(fsm, seed=seed)
    latencies = list(range(1, max_latency + 1))
    designs = design_ced_sweep(
        fsm,
        latencies=latencies,
        semantics=semantics,
        max_faults=max_faults,
        solve_config=solve_config,
        cache=cache,
        recorder=recorder,
        degraded=degraded,
    )
    synthesis = next(iter(designs.values())).synthesis
    predicted = max_useful_latency(
        synthesis,
        StuckAtModel(synthesis, max_faults=min(max_faults or 200, 200)),
        TableConfig(latency=max_latency, semantics=semantics, seed=seed),
    )
    points = [
        SaturationPoint(
            latency=p,
            num_trees=designs[p].num_parity_bits,
            gates=designs[p].gates,
            cost=designs[p].cost,
        )
        for p in latencies
    ]
    return SaturationCurve(
        name=fsm.name,
        semantics=semantics,
        points=points,
        predicted_max_useful_latency=predicted,
    )


def latency_saturation_curves(
    circuits: list[str],
    max_latency: int = 4,
    semantics: str = "trajectory",
    max_faults: int | None = 400,
    solve_config: SolveConfig = SolveConfig(),
    seed: int = 2004,
    options=None,
    echo=None,
) -> dict[str, SaturationCurve]:
    """Saturation curves for several circuits via the campaign runtime.

    ``options`` is a :class:`repro.runtime.CampaignOptions`; the default
    runs the jobs inline (still cache-backed when a cache dir is
    configured).  Curves come back keyed by circuit name.
    """
    from repro.runtime.campaign import CampaignJob, CampaignOptions, run_campaign

    if options is None:
        options = CampaignOptions(name="sweep")
    jobs = [
        CampaignJob(
            kind="sweep",
            name=circuit,
            spec=(circuit, max_latency, semantics, max_faults, solve_config, seed),
        )
        for circuit in circuits
    ]
    run = run_campaign(jobs, options, echo=echo)
    if run.failed:
        names = ", ".join(report.name for report in run.failed)
        errors = "; ".join(report.error or "?" for report in run.failed)
        raise RuntimeError(f"sweep campaign failed for {names}: {errors}")
    return {circuit: run.values[circuit] for circuit in circuits}
