"""Paper-experiment harnesses.

One module per reported artefact: :mod:`repro.experiments.table1` rebuilds
the paper's Table 1 (per-circuit original cost and CED trees/gates/cost at
latencies 1–3), :mod:`repro.experiments.summary` computes the running
text's aggregate statistics (vs duplication; p1→p2; p2→p3), and
:mod:`repro.experiments.figures` produces the §2 latency-saturation curve.
The pytest-benchmark wrappers in ``benchmarks/`` call straight into these.
"""

from repro.experiments.figures import SaturationPoint, latency_saturation_curve
from repro.experiments.report import (
    table1_to_dict,
    table1_to_json,
    write_table1_json,
)
from repro.experiments.summary import PAPER_STATS, SummaryStats, summarize
from repro.experiments.table1 import (
    Table1Config,
    Table1Result,
    Table1Row,
    format_table1,
    run_circuit,
    run_table1,
)

__all__ = [
    "PAPER_STATS",
    "SaturationPoint",
    "SummaryStats",
    "Table1Config",
    "Table1Result",
    "Table1Row",
    "format_table1",
    "latency_saturation_curve",
    "run_circuit",
    "run_table1",
    "summarize",
    "table1_to_dict",
    "table1_to_json",
    "write_table1_json",
]
