"""Machine-readable experiment artefacts.

`table1_to_json` serialises a :class:`repro.experiments.table1.Table1Result`
(rows, latency entries, duplication baseline and the aggregate statistics)
so downstream analysis — plotting, regression tracking across seeds, the
EXPERIMENTS.md tables — can consume one stable format instead of scraping
the printed table.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path

from repro.experiments.summary import PAPER_STATS, summarize
from repro.experiments.table1 import Table1Result


def table1_to_dict(result: Table1Result) -> dict:
    """Plain-dict form of a Table-1 run (JSON-serialisable)."""
    stats = summarize(result)
    return {
        "config": {
            "latencies": list(result.config.latencies),
            "semantics": result.config.semantics,
            "encoding": result.config.encoding,
            "max_faults": result.config.max_faults,
            "seed": result.config.seed,
            "multilevel": result.config.multilevel,
            "solve": asdict(result.config.solve),
        },
        "rows": [
            {
                "name": row.name,
                "inputs": row.inputs,
                "state_bits": row.state_bits,
                "outputs": row.outputs,
                "gates": row.gates,
                "cost": row.cost,
                "duplication_functions": row.duplication_functions,
                "duplication_cost": row.duplication_cost,
                "latencies": {
                    str(p): {
                        "trees": entry.num_trees,
                        "gates": entry.gates,
                        "cost": entry.cost,
                    }
                    for p, entry in sorted(row.entries.items())
                },
            }
            for row in result.rows
        ],
        "summary": {
            "measured": stats.as_dict(),
            "paper": dict(PAPER_STATS),
        },
    }


def table1_to_json(result: Table1Result, indent: int = 2) -> str:
    return json.dumps(table1_to_dict(result), indent=indent)


def write_table1_json(result: Table1Result, path: str | Path) -> None:
    Path(path).write_text(table1_to_json(result) + "\n")
