"""Aggregate statistics quoted in the paper's running text (§5).

Paper values, for reference (stuck-at faults, MCNC circuits, SIS mapping):

* **A** — the p=1 parity method needs on average 53.0% fewer functions and
  22.4% less hardware than duplicating the circuit;
* **B** — raising the bound to p=2 reduces the number of parity bits by a
  further 17.0% and the hardware cost by 7.8% (vs p=1);
* **C** — p=3 yields an additional 7.23% / 7.08% reduction (vs p=2).

:func:`summarize` computes the same three pairs from a
:class:`repro.experiments.table1.Table1Result`; EXPERIMENTS.md records the
paper-vs-measured comparison.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.experiments.table1 import Table1Result

PAPER_STATS = {
    "vs_duplication_functions": 53.00,
    "vs_duplication_cost": 22.40,
    "p2_vs_p1_functions": 17.0,
    "p2_vs_p1_cost": 7.8,
    "p3_vs_p2_functions": 7.23,
    "p3_vs_p2_cost": 7.08,
}


@dataclass
class SummaryStats:
    """Mean percentage reductions across all circuits (positive = better)."""

    vs_duplication_functions: float
    vs_duplication_cost: float
    p2_vs_p1_functions: float
    p2_vs_p1_cost: float
    p3_vs_p2_functions: float
    p3_vs_p2_cost: float

    def as_dict(self) -> dict[str, float]:
        return {
            "vs_duplication_functions": self.vs_duplication_functions,
            "vs_duplication_cost": self.vs_duplication_cost,
            "p2_vs_p1_functions": self.p2_vs_p1_functions,
            "p2_vs_p1_cost": self.p2_vs_p1_cost,
            "p3_vs_p2_functions": self.p3_vs_p2_functions,
            "p3_vs_p2_cost": self.p3_vs_p2_cost,
        }

    def format(self) -> str:
        lines = ["Aggregate reductions (measured vs paper):"]
        for key, measured in self.as_dict().items():
            lines.append(
                f"  {key:28s} measured {measured:6.2f}%   paper {PAPER_STATS[key]:6.2f}%"
            )
        return "\n".join(lines)


def summarize(result: Table1Result) -> SummaryStats:
    """Compute the three aggregate statistic pairs from a Table-1 run."""
    latencies = sorted(result.config.latencies)
    if latencies[:1] != [1]:
        raise ValueError("summary statistics require latency 1 in the run")

    def mean(values: list[float]) -> float:
        return sum(values) / len(values) if values else float("nan")

    vs_dup_fn: list[float] = []
    vs_dup_cost: list[float] = []
    p2_fn: list[float] = []
    p2_cost: list[float] = []
    p3_fn: list[float] = []
    p3_cost: list[float] = []
    for row in result.rows:
        p1 = row.entries[1]
        vs_dup_fn.append(100.0 * (1 - p1.num_trees / row.duplication_functions))
        vs_dup_cost.append(100.0 * (1 - p1.cost / row.duplication_cost))
        if 2 in row.entries:
            p2 = row.entries[2]
            p2_fn.append(100.0 * (1 - p2.num_trees / p1.num_trees))
            p2_cost.append(100.0 * (1 - p2.cost / p1.cost))
            if 3 in row.entries:
                p3 = row.entries[3]
                p3_fn.append(100.0 * (1 - p3.num_trees / p2.num_trees))
                p3_cost.append(100.0 * (1 - p3.cost / p2.cost))
    return SummaryStats(
        vs_duplication_functions=mean(vs_dup_fn),
        vs_duplication_cost=mean(vs_dup_cost),
        p2_vs_p1_functions=mean(p2_fn),
        p2_vs_p1_cost=mean(p2_cost),
        p3_vs_p2_functions=mean(p3_fn),
        p3_vs_p2_cost=mean(p3_cost),
    )
